//! Device configuration: media timings, buffer and cache sizing, mapping
//! policy, and the builder that validates a complete [`DeviceConfig`].

use serde::{Deserialize, Serialize};

use crate::addr::SLICE_BYTES;
use crate::error::ConfigError;
use crate::geometry::Geometry;
use crate::time::SimDuration;

/// Flash cell technology of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellType {
    /// Single-level cell: 4 KiB partial programming, lowest latency.
    Slc,
    /// Triple-level cell.
    Tlc,
    /// Quad-level cell.
    Qlc,
}

impl CellType {
    /// All cell types, in increasing density order.
    pub const ALL: [CellType; 3] = [CellType::Slc, CellType::Tlc, CellType::Qlc];

    /// Short lowercase name, e.g. `"slc"`.
    pub fn name(self) -> &'static str {
        match self {
            CellType::Slc => "slc",
            CellType::Tlc => "tlc",
            CellType::Qlc => "qlc",
        }
    }
}

impl core::fmt::Display for CellType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Access latency of one media type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MediaLatency {
    /// Latency to read one flash page.
    pub read: SimDuration,
    /// Latency to program one programming unit.
    pub program: SimDuration,
    /// Latency to erase one flash block.
    pub erase: SimDuration,
}

/// Per-media timing table (paper Table II defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MediaTimings {
    /// SLC latencies: 75 µs program \[ISSCC'20], 20 µs read (vendor
    /// discussion, paper §III-B).
    pub slc: MediaLatency,
    /// TLC latencies: 937.5 µs program, 32 µs read \[ISSCC'24].
    pub tlc: MediaLatency,
    /// QLC latencies: 6400 µs program, 85 µs read \[ISSCC'24].
    pub qlc: MediaLatency,
}

impl MediaTimings {
    /// The defaults of paper Table II. Erase latencies follow typical 3D
    /// NAND data sheets (3.5 ms) — the paper does not list erase times.
    pub fn paper_table2() -> MediaTimings {
        MediaTimings {
            slc: MediaLatency {
                read: SimDuration::from_micros(20),
                program: SimDuration::from_micros(75),
                erase: SimDuration::from_millis(3),
            },
            tlc: MediaLatency {
                read: SimDuration::from_micros(32),
                program: SimDuration::from_nanos(937_500),
                erase: SimDuration::from_nanos(3_500_000),
            },
            qlc: MediaLatency {
                read: SimDuration::from_micros(85),
                program: SimDuration::from_micros(6400),
                erase: SimDuration::from_millis(4),
            },
        }
    }

    /// Latency entry for a cell type.
    #[inline]
    pub fn latency(&self, cell: CellType) -> MediaLatency {
        match cell {
            CellType::Slc => self.slc,
            CellType::Tlc => self.tlc,
            CellType::Qlc => self.qlc,
        }
    }
}

impl Default for MediaTimings {
    fn default() -> Self {
        MediaTimings::paper_table2()
    }
}

/// Granularity of an L2P mapping entry (the paper's two reserved *map bits*,
/// §III-C): one logical page, one chunk, or one whole zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MapGranularity {
    /// 4 KiB page mapping.
    Page,
    /// Chunk mapping (4 MiB / 1024 pages by default).
    Chunk,
    /// Whole-zone mapping.
    Zone,
}

impl MapGranularity {
    /// Encoding as the two reserved map bits in a mapping-table entry.
    pub fn to_bits(self) -> u8 {
        match self {
            MapGranularity::Page => 0b00,
            MapGranularity::Chunk => 0b01,
            MapGranularity::Zone => 0b10,
        }
    }

    /// Decodes the two map bits; returns `None` for the reserved pattern.
    pub fn from_bits(bits: u8) -> Option<MapGranularity> {
        match bits & 0b11 {
            0b00 => Some(MapGranularity::Page),
            0b01 => Some(MapGranularity::Chunk),
            0b10 => Some(MapGranularity::Zone),
            _ => None,
        }
    }
}

impl core::fmt::Display for MapGranularity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MapGranularity::Page => f.write_str("page"),
            MapGranularity::Chunk => f.write_str("chunk"),
            MapGranularity::Zone => f.write_str("zone"),
        }
    }
}

/// How an L2P cache miss discovers the aggregation level of an address
/// before fetching mapping entries from flash (paper §III-C / §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Performance-optimised: an in-SRAM bitmap records the map bits of all
    /// logical addresses, so one flash fetch suffices. Costs ~0.006 % of
    /// capacity in SRAM (unacceptable at 1 TB, per the paper).
    Bitmap,
    /// Capacity-optimised: probe the mapping table zone-first, then chunk,
    /// then page — up to three flash fetches per miss.
    Multiple,
    /// The paper's proposed compromise: aggregated (chunk/zone) entries are
    /// pinned in the L2P cache when generated, so misses are always
    /// page-granularity and need one fetch.
    Pinned,
}

impl core::fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SearchStrategy::Bitmap => f.write_str("bitmap"),
            SearchStrategy::Multiple => f.write_str("multiple"),
            SearchStrategy::Pinned => f.write_str("pinned"),
        }
    }
}

/// How zones with non-power-of-two backing superblocks are exposed
/// (paper §III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZonePadding {
    /// Zone size equals the superblock capacity even when that is not a
    /// power of two (relies on the pending NVMe relaxation).
    None,
    /// Zone size is rounded up to the next power of two; the tail of each
    /// zone is patched into *reserved* SLC flash pages so its mapping entries
    /// can still aggregate (the paper's temporary solution).
    SlcAligned,
}

/// Seeded fault-injection configuration of the flash fault plane.
///
/// All rates default to zero, which disables injection entirely: the fault
/// plane never draws from its RNG, so a default-configured device is
/// bit-identical (state *and* timing) to a build without the fault plane.
/// Rates are per-operation probabilities in `[0, 1]`.
///
/// The fault RNG is seeded from [`FaultConfig::seed`] alone — independent
/// of the workload and jitter seeds — so two runs with the same seed and
/// the same operation sequence produce byte-identical fault schedules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the dedicated fault RNG.
    pub seed: u64,
    /// Probability that one program operation (unit or SLC batch) fails.
    /// The failed slices are burned; the core re-issues the data elsewhere.
    // xtask-lint: allow(float-determinism) — fault probability knob, compared against the seeded rng
    pub program_fail_rate: f64,
    /// Probability that one block erase fails, permanently retiring the
    /// block (it drops out of its superblock's usable set).
    // xtask-lint: allow(float-determinism) — fault probability knob, compared against the seeded rng
    pub erase_fail_rate: f64,
    /// Probability that one data page read needs read-retry: the sense is
    /// repeated with stepped reference voltages, each step costing
    /// [`FaultConfig::read_retry_step`] extra latency.
    // xtask-lint: allow(float-determinism) — fault probability knob, compared against the seeded rng
    pub read_retry_rate: f64,
    /// Program failures on one block before it is retired as a *grown bad
    /// block*. Zero means program failures never retire a block.
    pub grown_bad_threshold: u32,
    /// Maximum retry steps of one read-retry event; the actual count is
    /// drawn uniformly from `1..=max_read_retries`.
    pub max_read_retries: u32,
    /// Extra sense latency per read-retry step.
    pub read_retry_step: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0xFA07_5EED,
            program_fail_rate: 0.0,
            erase_fail_rate: 0.0,
            read_retry_rate: 0.0,
            grown_bad_threshold: 0,
            max_read_retries: 0,
            read_retry_step: SimDuration::ZERO,
        }
    }
}

impl FaultConfig {
    /// A fault config with the given per-operation rates and sensible
    /// defaults for the remaining knobs (grown-bad after 2 program
    /// failures, up to 3 read-retry steps of 25 µs each).
    // xtask-lint: allow(float-determinism) — fault probability knobs, compared against the seeded rng
    pub fn with_rates(program_fail: f64, erase_fail: f64, read_retry: f64) -> FaultConfig {
        FaultConfig {
            program_fail_rate: program_fail,
            erase_fail_rate: erase_fail,
            read_retry_rate: read_retry,
            grown_bad_threshold: 2,
            max_read_retries: 3,
            read_retry_step: SimDuration::from_micros(25),
            ..FaultConfig::default()
        }
    }

    /// Whether any fault class can fire.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.program_fail_rate > 0.0 || self.erase_fail_rate > 0.0 || self.read_retry_rate > 0.0
    }
}

/// Complete configuration of a ConZone-style device.
///
/// Build one with [`DeviceConfig::builder`]; the builder validates all
/// cross-field constraints.
///
/// ```
/// use conzone_types::{DeviceConfig, Geometry};
///
/// let cfg = DeviceConfig::builder(Geometry::tiny())
///     .chunk_bytes(256 * 1024) // chunks must divide the 1 MiB zones
///     .build()?;
/// assert_eq!(cfg.write_buffers, 2);
/// # Ok::<(), conzone_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Flash array geometry.
    pub geometry: Geometry,
    /// Cell technology of the normal (zoned) region.
    pub normal_cell: CellType,
    /// Media latency table.
    pub timings: MediaTimings,
    /// Per-channel bandwidth in bytes per second (UFS 4.0-style 3200 MiB/s
    /// by default, paper §IV-A).
    pub channel_bytes_per_sec: u64,
    /// Whether channel transfer time is modelled at all (FEMU does not,
    /// paper §IV-B).
    pub model_channel_bandwidth: bool,
    /// Number of volatile write buffers shared by all open zones. Each
    /// buffer holds one superpage (paper §II-A/§IV-A uses two).
    pub write_buffers: usize,
    /// L2P cache capacity in bytes.
    pub l2p_cache_bytes: u64,
    /// Bytes consumed by one L2P cache entry (4 B in the paper's SRAM
    /// estimate, §IV-D).
    pub l2p_entry_bytes: u64,
    /// Miss-path search strategy.
    pub search_strategy: SearchStrategy,
    /// Largest aggregation level hybrid mapping may use. `Page` degenerates
    /// to pure page mapping (the Fig. 7 baseline); the Fig. 6(a) run uses
    /// `Chunk` for fairness against Legacy's chunk-sized prefetch.
    pub max_aggregation: MapGranularity,
    /// Chunk size in bytes (4 MiB / 1024 pages in the paper).
    pub chunk_bytes: u64,
    /// Maximum simultaneously open zones (F2FS opens up to 6, §II-B).
    pub max_open_zones: usize,
    /// Media holding the persisted L2P mapping table; mapping fetches pay
    /// this media's page-read latency.
    pub mapping_media: CellType,
    /// Fixed per-request host I/O-stack overhead (submission +completion
    /// path outside the device). ConZone runs under the real Linux block
    /// layer; we model that cost explicitly.
    pub host_overhead: SimDuration,
    /// Handling of non-power-of-two zone capacities.
    pub zone_padding: ZonePadding,
    /// Run SLC garbage collection when free SLC superblocks drop to this
    /// count.
    pub slc_gc_threshold: usize,
    /// Mapping-table persistence: flush the L2P update log to flash after
    /// this many accumulated updates (paper §III-E "Persistence of L2P
    /// Mapping Table Updates"; the flush may block host requests). Zero
    /// disables persistence modelling.
    pub l2p_log_entries: u64,
    /// Number of leading zones exposed as *conventional* zones allowing
    /// in-place updates (paper §III-E "Conventional Zones"). Their data is
    /// page-mapped into the SLC region. Zero disables the feature.
    pub conventional_zones: usize,
    /// Store actual data bytes for read-back verification (costs host
    /// memory proportional to written data; enable in tests, disable for
    /// large timing studies).
    pub data_backing: bool,
    /// Seed for all stochastic elements (jitter models).
    pub seed: u64,
    /// Fault-injection plane configuration (all-zero rates by default, i.e.
    /// no faults). `#[serde(default)]` keeps older serialized configs
    /// loadable.
    #[serde(default)]
    pub fault: FaultConfig,
}

impl DeviceConfig {
    /// Starts building a configuration for the given geometry, with paper
    /// defaults for everything else.
    pub fn builder(geometry: Geometry) -> DeviceConfigBuilder {
        DeviceConfigBuilder {
            cfg: DeviceConfig {
                geometry,
                normal_cell: CellType::Tlc,
                timings: MediaTimings::paper_table2(),
                channel_bytes_per_sec: 3200 * 1024 * 1024,
                model_channel_bandwidth: true,
                write_buffers: 2,
                l2p_cache_bytes: 12 * 1024,
                l2p_entry_bytes: 4,
                search_strategy: SearchStrategy::Bitmap,
                max_aggregation: MapGranularity::Zone,
                chunk_bytes: 4 * 1024 * 1024,
                max_open_zones: 6,
                mapping_media: CellType::Slc,
                host_overhead: SimDuration::from_nanos(12_500),
                zone_padding: ZonePadding::SlcAligned,
                slc_gc_threshold: 1,
                l2p_log_entries: 0,
                conventional_zones: 0,
                data_backing: false,
                seed: 0x5eed_c0de,
                fault: FaultConfig::default(),
            },
        }
    }

    /// The paper's §IV-A evaluation configuration: TLC, 2×2 chips, two
    /// 384 KiB write buffers, 12 KiB L2P cache over ~1.5 GB of flash.
    pub fn paper_evaluation() -> DeviceConfig {
        DeviceConfig::builder(Geometry::consumer_1p5gb())
            .build()
            .expect("paper evaluation config is valid")
    }

    /// A small, fully validated config for tests and examples, with data
    /// backing enabled.
    pub fn tiny_for_tests() -> DeviceConfig {
        DeviceConfig::builder(Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .data_backing(true)
            .build()
            .expect("tiny config is valid")
    }

    /// Capacity of the backing superblock of each zone, in bytes.
    #[inline]
    pub fn zone_backing_bytes(&self) -> u64 {
        self.geometry.superblock_bytes()
    }

    /// Exposed zone size in bytes, after padding policy.
    pub fn zone_size_bytes(&self) -> u64 {
        let backing = self.zone_backing_bytes();
        match self.zone_padding {
            ZonePadding::None => backing,
            ZonePadding::SlcAligned => backing.next_power_of_two(),
        }
    }

    /// Exposed zone size in 4 KiB slices.
    #[inline]
    pub fn zone_size_slices(&self) -> u64 {
        self.zone_size_bytes() / SLICE_BYTES
    }

    /// Slices of each zone that are patched into reserved SLC pages
    /// (zero when the backing superblock is already a power of two or
    /// padding is disabled).
    #[inline]
    pub fn zone_patch_slices(&self) -> u64 {
        (self.zone_size_bytes() - self.zone_backing_bytes()) / SLICE_BYTES
    }

    /// Number of zones exposed by the device.
    #[inline]
    pub fn zone_count(&self) -> usize {
        self.geometry.zone_count()
    }

    /// Total logical capacity in bytes (all zones).
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.zone_size_bytes() * self.zone_count() as u64
    }

    /// Logical capacity in 4 KiB slices.
    #[inline]
    pub fn capacity_slices(&self) -> u64 {
        self.capacity_bytes() / SLICE_BYTES
    }

    /// Number of entries the L2P cache can hold.
    #[inline]
    pub fn l2p_cache_entries(&self) -> usize {
        (self.l2p_cache_bytes / self.l2p_entry_bytes) as usize
    }

    /// Chunk size in 4 KiB slices.
    #[inline]
    pub fn chunk_slices(&self) -> u64 {
        self.chunk_bytes / SLICE_BYTES
    }

    /// Latency entry of the normal region's media.
    #[inline]
    pub fn normal_latency(&self) -> MediaLatency {
        self.timings.latency(self.normal_cell)
    }
}

/// Builder for [`DeviceConfig`]. Obtain via [`DeviceConfig::builder`].
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    cfg: DeviceConfig,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, value: $ty) -> Self {
            self.cfg.$name = value;
            self
        }
    };
}

impl DeviceConfigBuilder {
    setter!(
        /// Sets the cell technology of the normal region.
        normal_cell: CellType
    );
    setter!(
        /// Overrides the media latency table.
        timings: MediaTimings
    );
    setter!(
        /// Sets per-channel bandwidth in bytes per second.
        channel_bytes_per_sec: u64
    );
    setter!(
        /// Enables or disables channel-bandwidth modelling.
        model_channel_bandwidth: bool
    );
    setter!(
        /// Sets the number of shared volatile write buffers.
        write_buffers: usize
    );
    setter!(
        /// Sets the L2P cache capacity in bytes.
        l2p_cache_bytes: u64
    );
    setter!(
        /// Sets the size of one L2P cache entry in bytes.
        l2p_entry_bytes: u64
    );
    setter!(
        /// Sets the miss-path search strategy.
        search_strategy: SearchStrategy
    );
    setter!(
        /// Caps the aggregation level of hybrid mapping.
        max_aggregation: MapGranularity
    );
    setter!(
        /// Sets the chunk size in bytes.
        chunk_bytes: u64
    );
    setter!(
        /// Sets the maximum number of simultaneously open zones.
        max_open_zones: usize
    );
    setter!(
        /// Sets the media where the mapping table is persisted.
        mapping_media: CellType
    );
    setter!(
        /// Sets the fixed per-request host I/O-stack overhead.
        host_overhead: SimDuration
    );
    setter!(
        /// Sets the non-power-of-two zone padding policy.
        zone_padding: ZonePadding
    );
    setter!(
        /// Sets the SLC GC trigger threshold (free superblocks).
        slc_gc_threshold: usize
    );
    setter!(
        /// Sets the L2P persistence-log flush threshold (0 disables).
        l2p_log_entries: u64
    );
    setter!(
        /// Exposes the first `n` zones as conventional (in-place) zones.
        conventional_zones: usize
    );
    setter!(
        /// Enables storing actual data for read-back verification.
        data_backing: bool
    );
    setter!(
        /// Sets the RNG seed for stochastic elements.
        seed: u64
    );
    setter!(
        /// Sets the fault-injection plane configuration.
        fault: FaultConfig
    );

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the geometry is inconsistent, when any
    /// sizing field is zero, when the chunk size does not divide the zone
    /// size, or when the SLC region cannot hold even one superpage.
    pub fn build(self) -> Result<DeviceConfig, ConfigError> {
        let cfg = self.cfg;
        cfg.geometry.validate()?;
        if cfg.write_buffers == 0 {
            return Err(ConfigError::new("write_buffers must be non-zero"));
        }
        if cfg.l2p_entry_bytes == 0 {
            return Err(ConfigError::new("l2p_entry_bytes must be non-zero"));
        }
        if cfg.l2p_cache_entries() == 0 {
            return Err(ConfigError::new(
                "l2p_cache_bytes too small for a single entry",
            ));
        }
        if cfg.chunk_bytes == 0 || !cfg.chunk_bytes.is_multiple_of(SLICE_BYTES) {
            return Err(ConfigError::new(format!(
                "chunk_bytes {} must be a non-zero multiple of 4 KiB",
                cfg.chunk_bytes
            )));
        }
        let zone_size = cfg.zone_size_bytes();
        if !zone_size.is_multiple_of(cfg.chunk_bytes) {
            return Err(ConfigError::new(format!(
                "chunk_bytes {} does not divide the zone size {}",
                cfg.chunk_bytes, zone_size
            )));
        }
        if cfg.max_open_zones == 0 {
            return Err(ConfigError::new("max_open_zones must be non-zero"));
        }
        if cfg.channel_bytes_per_sec == 0 {
            return Err(ConfigError::new("channel_bytes_per_sec must be non-zero"));
        }
        if cfg.normal_cell == CellType::Slc {
            return Err(ConfigError::new(
                "normal region cannot be SLC; use Tlc or Qlc (SLC is the secondary buffer)",
            ));
        }
        if cfg.zone_padding == ZonePadding::None && !zone_size.is_power_of_two() {
            // Mirror the NVMe restriction the paper discusses: warnless
            // acceptance would hide a spec violation, so reject it and point
            // at the SlcAligned workaround.
            return Err(ConfigError::new(format!(
                "zone size {zone_size} is not a power of two; use ZonePadding::SlcAligned \
                 (paper §III-E) or a power-of-two geometry"
            )));
        }
        let slc_bytes = cfg.geometry.slc_superblocks() as u64 * cfg.geometry.superblock_bytes();
        if slc_bytes < cfg.geometry.superpage_bytes() {
            return Err(ConfigError::new(
                "SLC region smaller than one superpage cannot back premature flushes",
            ));
        }
        if cfg.conventional_zones >= cfg.zone_count() {
            return Err(ConfigError::new(format!(
                "conventional_zones {} must leave at least one sequential zone (of {})",
                cfg.conventional_zones,
                cfg.zone_count()
            )));
        }
        for (name, rate) in [
            ("program_fail_rate", cfg.fault.program_fail_rate),
            ("erase_fail_rate", cfg.fault.erase_fail_rate),
            ("read_retry_rate", cfg.fault.read_retry_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(ConfigError::new(format!(
                    "fault {name} {rate} must be a probability in [0, 1]"
                )));
            }
        }
        if cfg.fault.read_retry_rate > 0.0
            && (cfg.fault.max_read_retries == 0 || cfg.fault.read_retry_step == SimDuration::ZERO)
        {
            return Err(ConfigError::new(
                "read_retry_rate needs max_read_retries > 0 and a non-zero read_retry_step",
            ));
        }
        // Conventional data lives permanently in SLC; leave GC headroom.
        let conventional_bytes = cfg.conventional_zones as u64 * cfg.zone_size_bytes();
        if conventional_bytes * 2 > slc_bytes {
            return Err(ConfigError::new(format!(
                "conventional zones need {conventional_bytes} bytes of SLC but only                  {slc_bytes} are available (must fit in half the region)"
            )));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let t = MediaTimings::paper_table2();
        assert_eq!(t.slc.program, SimDuration::from_micros(75));
        assert_eq!(t.slc.read, SimDuration::from_micros(20));
        assert_eq!(t.tlc.program.as_nanos(), 937_500);
        assert_eq!(t.tlc.read, SimDuration::from_micros(32));
        assert_eq!(t.qlc.program, SimDuration::from_micros(6400));
        assert_eq!(t.qlc.read, SimDuration::from_micros(85));
        assert_eq!(t.latency(CellType::Qlc), t.qlc);
    }

    #[test]
    fn map_bits_roundtrip() {
        for g in [
            MapGranularity::Page,
            MapGranularity::Chunk,
            MapGranularity::Zone,
        ] {
            assert_eq!(MapGranularity::from_bits(g.to_bits()), Some(g));
        }
        assert_eq!(MapGranularity::from_bits(0b11), None);
        assert!(MapGranularity::Page < MapGranularity::Chunk);
        assert!(MapGranularity::Chunk < MapGranularity::Zone);
    }

    #[test]
    fn paper_evaluation_config() {
        let cfg = DeviceConfig::paper_evaluation();
        assert_eq!(cfg.write_buffers, 2);
        assert_eq!(cfg.l2p_cache_bytes, 12 * 1024);
        assert_eq!(cfg.l2p_cache_entries(), 3072);
        // 15 MiB superblock padded to 16 MiB zones.
        assert_eq!(cfg.zone_backing_bytes(), 15 * 1024 * 1024);
        assert_eq!(cfg.zone_size_bytes(), 16 * 1024 * 1024);
        assert_eq!(cfg.zone_patch_slices(), 256);
        assert_eq!(cfg.zone_count(), 96);
        assert_eq!(cfg.chunk_slices(), 1024);
    }

    #[test]
    fn tiny_config_is_power_of_two() {
        let cfg = DeviceConfig::tiny_for_tests();
        assert_eq!(cfg.zone_size_bytes(), 1024 * 1024);
        assert_eq!(cfg.zone_patch_slices(), 0);
        assert!(cfg.data_backing);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(DeviceConfig::builder(Geometry::tiny())
            .write_buffers(0)
            .build()
            .is_err());
        assert!(DeviceConfig::builder(Geometry::tiny())
            .l2p_cache_bytes(0)
            .build()
            .is_err());
        assert!(DeviceConfig::builder(Geometry::tiny())
            .chunk_bytes(5000)
            .build()
            .is_err());
        // Chunk larger than zone cannot divide it.
        assert!(DeviceConfig::builder(Geometry::tiny())
            .chunk_bytes(3 * 1024 * 1024)
            .build()
            .is_err());
        assert!(DeviceConfig::builder(Geometry::tiny())
            .normal_cell(CellType::Slc)
            .build()
            .is_err());
        // Non-power-of-two zone without the SLC workaround is rejected.
        assert!(DeviceConfig::builder(Geometry::consumer_1p5gb())
            .zone_padding(ZonePadding::None)
            .build()
            .is_err());
    }

    #[test]
    fn zone_padding_none_on_power_of_two_ok() {
        let cfg = DeviceConfig::builder(Geometry::tiny())
            .zone_padding(ZonePadding::None)
            .chunk_bytes(256 * 1024)
            .build()
            .unwrap();
        assert_eq!(cfg.zone_patch_slices(), 0);
    }

    #[test]
    fn cell_type_names() {
        assert_eq!(CellType::Slc.to_string(), "slc");
        assert_eq!(CellType::ALL.len(), 3);
    }

    #[test]
    fn fault_config_defaults_and_validation() {
        let cfg = DeviceConfig::tiny_for_tests();
        assert!(!cfg.fault.enabled(), "defaults inject nothing");
        assert_eq!(cfg.fault.program_fail_rate, 0.0);

        let f = FaultConfig::with_rates(0.01, 0.02, 0.03);
        assert!(f.enabled());
        assert!(f.max_read_retries > 0);
        assert!(DeviceConfig::builder(Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .fault(f)
            .build()
            .is_ok());

        let bad = FaultConfig::with_rates(1.5, 0.0, 0.0);
        assert!(DeviceConfig::builder(Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .fault(bad)
            .build()
            .is_err());

        let mut retry = FaultConfig::with_rates(0.0, 0.0, 0.5);
        retry.max_read_retries = 0;
        assert!(DeviceConfig::builder(Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .fault(retry)
            .build()
            .is_err());
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = DeviceConfig::tiny_for_tests();
        let json = serde_json_like(&cfg);
        assert!(json.contains("geometry"));
    }

    // serde_json is not in the dependency set; smoke-test Serialize via the
    // debug formatter of the serialized struct instead.
    fn serde_json_like(cfg: &DeviceConfig) -> String {
        format!("{cfg:?}")
    }
}
