//! Shared vocabulary types for the ConZone emulator workspace.
//!
//! This crate defines the units every other crate speaks in:
//!
//! * [`SimTime`] / [`SimDuration`] — the simulated nanosecond clock;
//! * [`Lpn`], [`Ppa`], [`ZoneId`], [`ChunkId`], … — logical and physical
//!   address newtypes at the 4 KiB slice granularity;
//! * [`Geometry`] — the physical organisation of the flash array (channels,
//!   chips, blocks, pages, programming units, superblocks);
//! * [`DeviceConfig`] — a validated device configuration with the paper's
//!   Table II media timings as defaults;
//! * [`StorageDevice`] / [`ZonedDevice`] — the trait all device models
//!   implement so the host harness can drive them interchangeably;
//! * [`Counters`] — the statistics record from which bandwidth, write
//!   amplification and cache hit rates are derived.
//!
//! ```
//! use conzone_types::{DeviceConfig, Geometry, MapGranularity};
//!
//! let cfg = DeviceConfig::builder(Geometry::tiny())
//!     .chunk_bytes(256 * 1024)
//!     .max_aggregation(MapGranularity::Chunk)
//!     .build()?;
//! assert_eq!(cfg.zone_size_bytes(), 1024 * 1024);
//! # Ok::<(), conzone_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod config;
mod counters;
mod device;
mod error;
mod geometry;
mod span;
mod time;
mod trace;

pub use addr::{ChannelId, ChipId, ChunkId, Lpn, LpnRange, Ppa, SuperblockId, ZoneId, SLICE_BYTES};
pub use config::{
    CellType, DeviceConfig, DeviceConfigBuilder, FaultConfig, MapGranularity, MediaLatency,
    MediaTimings, SearchStrategy, ZonePadding,
};
pub use counters::Counters;
pub use device::{
    Completion, IoKind, IoRequest, PowerCycle, RecoveryReport, StorageDevice, ZoneInfo, ZoneState,
    ZonedDevice,
};
pub use error::{ConfigError, DeviceError};
pub use geometry::{Geometry, PpaParts};
pub use span::{SpanKind, SpanRecord, SpanRecorder, SpanSink};
pub use time::{SimDuration, SimTime};
pub use trace::{
    CountingSink, DeviceEvent, FaultKind, FlushKind, L2pOutcome, MediaOp, Probe, TraceRecord,
    TraceSink,
};

#[cfg(test)]
mod proptests;
