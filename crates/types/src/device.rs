//! The device-model interface the host harness drives.
//!
//! Every emulated device — ConZone, the Legacy baseline and the FEMU-like
//! baseline — implements [`StorageDevice`]; zoned models additionally
//! implement [`ZonedDevice`]. Devices are *analytic* discrete-event models:
//! a request submitted at simulated time `now` returns a [`Completion`]
//! carrying the simulated finish time, computed from the device's internal
//! resource reservations. The host must submit requests in non-decreasing
//! `now` order (the DES event loop guarantees this).

use bytes::Bytes;

use crate::addr::{LpnRange, ZoneId, SLICE_BYTES};
use crate::config::DeviceConfig;
use crate::counters::Counters;
use crate::error::DeviceError;
use crate::time::{SimDuration, SimTime};

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Host read.
    Read,
    /// Host write (zoned devices require it to land on a write pointer).
    Write,
    /// Zone append (NVMe ZNS): the request's offset selects the *zone*;
    /// the device picks the actual location at the write pointer and
    /// reports it in [`Completion::assigned_offset`]. Lets multiple
    /// writers share a zone without coordinating the pointer.
    Append,
}

/// One host I/O request at 4 KiB sector granularity.
#[derive(Debug, Clone)]
pub struct IoRequest {
    /// Direction.
    pub kind: IoKind,
    /// Byte offset into the logical address space; must be 4 KiB aligned.
    pub offset: u64,
    /// Length in bytes; must be a non-zero multiple of 4 KiB.
    pub len: u64,
    /// Payload for writes when the device stores data
    /// ([`DeviceConfig::data_backing`]); ignored for reads.
    pub data: Option<Bytes>,
}

impl IoRequest {
    /// Creates a read request.
    pub fn read(offset: u64, len: u64) -> IoRequest {
        IoRequest {
            kind: IoKind::Read,
            offset,
            len,
            data: None,
        }
    }

    /// Creates a write request without payload (timing-only mode).
    pub fn write(offset: u64, len: u64) -> IoRequest {
        IoRequest {
            kind: IoKind::Write,
            offset,
            len,
            data: None,
        }
    }

    /// Creates a write request carrying payload bytes.
    pub fn write_data(offset: u64, data: Bytes) -> IoRequest {
        IoRequest {
            kind: IoKind::Write,
            offset,
            len: data.len() as u64,
            data: Some(data),
        }
    }

    /// Creates a zone-append request targeting the zone containing
    /// `zone_start` (conventionally the zone's first byte).
    pub fn append(zone_start: u64, len: u64) -> IoRequest {
        IoRequest {
            kind: IoKind::Append,
            offset: zone_start,
            len,
            data: None,
        }
    }

    /// Creates a zone-append request carrying payload bytes.
    pub fn append_data(zone_start: u64, data: Bytes) -> IoRequest {
        IoRequest {
            kind: IoKind::Append,
            offset: zone_start,
            len: data.len() as u64,
            data: Some(data),
        }
    }

    /// Validates alignment, length and (for writes with payload) data size.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Unaligned`] or
    /// [`DeviceError::DataLengthMismatch`].
    pub fn validate(&self) -> Result<(), DeviceError> {
        if self.len == 0
            || !self.offset.is_multiple_of(SLICE_BYTES)
            || !self.len.is_multiple_of(SLICE_BYTES)
        {
            return Err(DeviceError::Unaligned {
                offset: self.offset,
                len: self.len,
            });
        }
        if let Some(data) = &self.data {
            if data.len() as u64 != self.len {
                return Err(DeviceError::DataLengthMismatch {
                    expected: self.len,
                    got: data.len() as u64,
                });
            }
        }
        Ok(())
    }
}

/// Result of a completed request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// When the request was submitted.
    pub submitted: SimTime,
    /// When the device finished it.
    pub finished: SimTime,
    /// Data read back, when the device stores data and the request was a
    /// read.
    pub data: Option<Bytes>,
    /// Where a zone append actually landed ([`IoKind::Append`] only).
    pub assigned_offset: Option<u64>,
}

impl Completion {
    /// End-to-end latency of the request.
    #[inline]
    pub fn latency(&self) -> SimDuration {
        self.finished - self.submitted
    }
}

/// Lifecycle state of a zone (a simplified NVMe ZNS state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZoneState {
    /// No data; write pointer at the start.
    Empty,
    /// Opened (implicitly by a write or explicitly); write pointer inside
    /// the zone. Counts against the open-zone limit.
    Open,
    /// Explicitly closed: holds data and a write pointer but releases its
    /// open-zone slot (and, in ConZone, its write buffer).
    Closed,
    /// Write pointer reached the zone capacity, or the zone was finished.
    Full,
}

/// Snapshot of one zone's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneInfo {
    /// The zone.
    pub id: ZoneId,
    /// Lifecycle state.
    pub state: ZoneState,
    /// Write pointer as a byte offset from the zone start.
    pub write_pointer: u64,
    /// Writable capacity in bytes (equals the zone size in this model).
    pub capacity: u64,
    /// Zone size in bytes (power of two under `ZonePadding::SlcAligned`).
    pub size: u64,
    /// Byte offset of the zone start in the logical address space.
    pub start: u64,
}

impl core::fmt::Display for ZoneInfo {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} {:?} wp={}/{} KiB",
            self.id,
            self.state,
            self.write_pointer >> 10,
            self.size >> 10
        )
    }
}

/// A block-interface device model driven by simulated time.
pub trait StorageDevice {
    /// The device's configuration.
    fn config(&self) -> &DeviceConfig;

    /// Total logical capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.config().capacity_bytes()
    }

    /// Submits one request at simulated time `now` and returns its
    /// completion. `now` must be non-decreasing across calls.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError`] for malformed or unserviceable requests;
    /// see the error type for the full set.
    fn submit(&mut self, now: SimTime, request: &IoRequest) -> Result<Completion, DeviceError>;

    /// Flushes volatile write buffers to non-volatile media (NVMe Flush /
    /// fsync). On ConZone, sub-unit remainders take the premature path
    /// into SLC (paper §II-A: synchronous writes are what the SLC
    /// secondary buffer exists for); models without an SLC region must
    /// pad out programming units.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError`] (e.g. out of SLC space).
    fn flush(&mut self, now: SimTime) -> Result<Completion, DeviceError>;

    /// Cumulative statistics.
    fn counters(&self) -> Counters;

    /// Short model name for reports (e.g. `"conzone"`).
    fn model_name(&self) -> &'static str;
}

/// A device exposing the zoned-namespace interface.
pub trait ZonedDevice: StorageDevice {
    /// Number of zones.
    fn zone_count(&self) -> usize;

    /// Zone size in bytes.
    fn zone_size(&self) -> u64;

    /// Snapshot of a zone.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] for an invalid id.
    fn zone_info(&self, zone: ZoneId) -> Result<ZoneInfo, DeviceError>;

    /// Resets a zone: erases its backing blocks and rewinds the write
    /// pointer (paper §III-D, E.2).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] for an invalid id.
    fn reset_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError>;

    /// Explicitly opens a zone, reserving an open-zone slot ahead of the
    /// first write.
    ///
    /// # Errors
    ///
    /// [`DeviceError::TooManyOpenZones`] at the limit,
    /// [`DeviceError::ZoneFull`] for a full zone,
    /// [`DeviceError::OutOfRange`] for an invalid id.
    fn open_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError>;

    /// Explicitly closes an open zone: buffered data is flushed (possibly
    /// prematurely, into SLC) and the open-zone slot is released. The
    /// write pointer is preserved; a later write reopens the zone.
    ///
    /// # Errors
    ///
    /// [`DeviceError::ZoneNotWritable`] unless the zone is open,
    /// [`DeviceError::OutOfRange`] for an invalid id.
    fn close_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError>;

    /// Finishes a zone: flushes buffered data and transitions it to Full
    /// without writing the remaining capacity (which stays unreadable).
    ///
    /// # Errors
    ///
    /// [`DeviceError::OutOfRange`] for an invalid id.
    fn finish_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError>;

    /// The zone containing byte `offset`.
    fn zone_of(&self, offset: u64) -> ZoneId {
        ZoneId(offset / self.zone_size())
    }
}

/// Outcome of a [`PowerCycle::remount`] replay after an unclean power cut.
///
/// Recovery is reported at 4 KiB slice granularity: `recovered` lists the
/// logical pages whose latest acknowledged contents survived in non-volatile
/// media (the SLC secondary buffer) and were re-linked by the replay scan;
/// `lost` lists the pages that only existed in volatile write buffers when
/// power was cut. Both lists are coalesced into maximal runs and sorted, so
/// two deterministic runs produce identical (`PartialEq`) reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Simulated time the power cut happened.
    pub cut_at: SimTime,
    /// Simulated time the remount replay finished.
    pub finished: SimTime,
    /// Slices whose mapping was rebuilt from non-volatile SLC.
    pub recovered_slices: u64,
    /// Acknowledged-but-unflushed slices lost from volatile buffers.
    pub lost_slices: u64,
    /// Logical pages recovered, as coalesced sorted runs.
    pub recovered: Vec<LpnRange>,
    /// Logical pages lost, as coalesced sorted runs.
    pub lost: Vec<LpnRange>,
}

impl core::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "remount at {}: recovered {} slices ({} runs), lost {} slices ({} runs)",
            self.finished,
            self.recovered_slices,
            self.recovered.len(),
            self.lost_slices,
            self.lost.len(),
        )
    }
}

/// Devices that model unclean power loss and recovery.
///
/// `power_cut` models yanking the plug at simulated time `now`: everything
/// volatile (write buffers, L2P cache, unsynced mapping-log entries) is
/// discarded instantly and the device stops servicing I/O. `remount` models
/// the subsequent power-on: the device replays its non-volatile structures
/// (SLC secondary buffer, persisted L2P log) and reports exactly which
/// logical pages came back and which were lost.
pub trait PowerCycle: StorageDevice {
    /// Cuts power at `now`. Returns the number of acknowledged slices that
    /// were lost from volatile buffers (also recorded in
    /// [`Counters::lost_slices`] at the following [`PowerCycle::remount`]).
    ///
    /// # Errors
    ///
    /// [`DeviceError::Unsupported`] on models without a power-loss model;
    /// `Unsupported` also if power is already cut.
    fn power_cut(&mut self, now: SimTime) -> Result<u64, DeviceError>;

    /// Remounts the device after [`PowerCycle::power_cut`], replaying
    /// non-volatile state and charging the simulated replay-scan latency.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Unsupported`] on models without a power-loss model,
    /// or if power was never cut.
    fn remount(&mut self, now: SimTime) -> Result<RecoveryReport, DeviceError>;

    /// Acknowledged slices currently at risk from a power cut: volatile
    /// buffered slices (would be lost) plus live SLC secondary-buffer
    /// slices (would need replay). The crash proptest checks
    /// `recovered_slices + lost_slices` against this value at the cut.
    fn in_flight_slices(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let r = IoRequest::read(4096, 8192);
        assert_eq!(r.kind, IoKind::Read);
        r.validate().unwrap();

        let w = IoRequest::write_data(0, Bytes::from(vec![7u8; 4096]));
        assert_eq!(w.len, 4096);
        w.validate().unwrap();
    }

    #[test]
    fn request_validation_rejects_bad_shapes() {
        assert!(IoRequest::read(1, 4096).validate().is_err());
        assert!(IoRequest::read(0, 100).validate().is_err());
        assert!(IoRequest::read(0, 0).validate().is_err());
        let mut w = IoRequest::write_data(0, Bytes::from(vec![0u8; 4096]));
        w.len = 8192;
        assert!(matches!(
            w.validate(),
            Err(DeviceError::DataLengthMismatch { .. })
        ));
    }

    #[test]
    fn zone_info_display() {
        let info = ZoneInfo {
            id: ZoneId(3),
            state: ZoneState::Open,
            write_pointer: 64 * 1024,
            capacity: 1024 * 1024,
            size: 1024 * 1024,
            start: 3 * 1024 * 1024,
        };
        assert_eq!(info.to_string(), "ZoneId(3) Open wp=64/1024 KiB");
    }

    #[test]
    fn completion_latency() {
        let c = Completion {
            submitted: SimTime::from_nanos(100),
            finished: SimTime::from_nanos(400),
            data: None,
            assigned_offset: None,
        };
        assert_eq!(c.latency(), SimDuration::from_nanos(300));
    }
}
