//! Device-internal event tracing (the `conzone-trace` layer).
//!
//! End-of-run aggregates ([`Counters`](crate::Counters)) say *how much*
//! happened; this module says *when*. Every device model emits typed
//! [`DeviceEvent`]s through one cheap [`Probe`] handle as it advances the
//! simulated clock, and any [`TraceSink`] implementation can collect them
//! — a bounded ring buffer for export (see `conzone_sim::trace`), or the
//! in-crate [`CountingSink`] when only totals are wanted.
//!
//! Emission is a single `Option` test when no sink is attached
//! ([`Probe::disabled`]), so instrumented hot paths cost nothing in the
//! default configuration.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::addr::ZoneId;
use crate::config::CellType;
use crate::time::SimTime;

/// Why a write buffer was flushed to media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushKind {
    /// A whole programming unit went to its canonical location (path ①/③).
    Full,
    /// A sub-unit remainder was evicted into SLC (path ②) — a buffer
    /// conflict, an explicit flush, or a zone close forced it out early.
    Premature,
}

/// Outcome of one L2P cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L2pOutcome {
    /// Hit on a zone-granularity entry.
    HitZone,
    /// Hit on a chunk-granularity entry.
    HitChunk,
    /// Hit on a page-granularity entry.
    HitPage,
    /// Miss — mapping entries must be fetched from flash.
    Miss,
}

/// What a media operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaOp {
    /// Page/unit program.
    Program,
    /// Page read.
    Read,
    /// Superblock erase.
    Erase,
}

/// Which fault class the fault plane injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A program operation failed; the affected slices are burned and the
    /// data must be re-issued elsewhere.
    Program,
    /// A block erase failed; the block is retired on the spot.
    Erase,
}

/// One device-internal event, stamped by the emitting [`Probe`] with the
/// nanosecond simulation clock.
///
/// Variants mirror the paper's mechanisms (§III): write-buffer flushes and
/// conflicts, the SLC secondary buffer (combines, patches), composite GC,
/// the hybrid L2P path, the persistence log, raw media operations, and
/// zone resets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceEvent {
    /// A write buffer flushed `slices` slices of `zone` (full or
    /// premature).
    BufferFlush {
        /// Zone owning the flushed data.
        zone: ZoneId,
        /// Full-unit canonical flush or premature SLC eviction.
        kind: FlushKind,
        /// Slices flushed.
        slices: u64,
    },
    /// Two zones mapped to the same buffer collided; the previous owner's
    /// data is being evicted.
    BufferConflict {
        /// Zone whose incoming write triggered the eviction.
        zone: ZoneId,
    },
    /// Staged SLC fragments were read back and combined with buffered data
    /// into a full programming unit (path ③).
    SlcCombine {
        /// Zone being combined.
        zone: ZoneId,
        /// Staged slices read back from SLC.
        staged_slices: u64,
    },
    /// Zone-tail slices beyond the backing superblock were patched into
    /// reserved SLC (§III-E).
    PatchSlice {
        /// Zone being patched.
        zone: ZoneId,
        /// Patched slices.
        slices: u64,
    },
    /// An SLC garbage-collection pass started.
    GcBegin {
        /// Live slices in the victim superblock (to migrate).
        valid_slices: u64,
    },
    /// The SLC garbage-collection pass finished.
    GcEnd {
        /// Slices actually migrated.
        migrated_slices: u64,
    },
    /// An L2P cache lookup resolved.
    L2pLookup {
        /// Hit level or miss.
        outcome: L2pOutcome,
    },
    /// The L2P cache evicted entries to make room.
    L2pEviction {
        /// Entries evicted.
        count: u64,
    },
    /// The L2P persistence log reached its threshold and flushed a mapping
    /// page to flash (§III-E).
    L2pLogFlush,
    /// A raw media operation (program / read / erase) on `cell` media.
    Media {
        /// Operation kind.
        op: MediaOp,
        /// Cell type of the target media.
        cell: CellType,
        /// Bytes transferred (0 for erases).
        bytes: u64,
    },
    /// A zone was reset (direct superblock erase, §III-D).
    ZoneReset {
        /// The reset zone.
        zone: ZoneId,
    },
    /// The fault plane injected a fault into a media operation.
    FaultInjected {
        /// Fault class.
        kind: FaultKind,
        /// Chip holding the affected block.
        chip: u64,
        /// Block index within the chip.
        block: u64,
    },
    /// A block was permanently retired (failed erase, or grown bad after
    /// repeated program failures) and left its superblock's usable set.
    BlockRetired {
        /// Chip holding the retired block.
        chip: u64,
        /// Block index within the chip.
        block: u64,
    },
    /// A data page read needed read-retry: `steps` extra stepped senses.
    ReadRetry {
        /// Retry steps performed (each costs the configured step latency).
        steps: u32,
    },
    /// Power was cut: volatile write buffers dropped, `lost_slices`
    /// acknowledged-but-unflushed slices discarded.
    PowerCut {
        /// Buffered slices lost across all zones.
        lost_slices: u64,
    },
    /// Remount replayed the SLC secondary buffer and L2P log after a power
    /// cut, rebuilding the mapping of `recovered_slices` slices.
    RecoveryReplay {
        /// Slices whose mapping was recovered from non-volatile SLC.
        recovered_slices: u64,
        /// Slices confirmed lost (they only existed in volatile buffers).
        lost_slices: u64,
    },
    /// A host command entered a submission queue — the NVMe-like doorbell
    /// of the queue-pair host model.
    QueueSubmit {
        /// Submission queue the command entered.
        queue: u64,
        /// Commands waiting in that queue after this one joined.
        backlog: u64,
    },
    /// The controller's serial command-fetch stage granted one queue's
    /// head command after arbitration.
    QueueArbitrate {
        /// Queue whose head command won arbitration.
        queue: u64,
        /// Nanoseconds the command waited between doorbell and grant.
        wait_ns: u64,
    },
    /// A queued command finished and its completion was posted to the
    /// completion queue.
    QueueComplete {
        /// Queue the command belonged to.
        queue: u64,
        /// Commands still outstanding on that queue pair afterwards.
        inflight: u64,
    },
}

impl DeviceEvent {
    /// Stable short name of the event kind (used by exporters and the
    /// counting sink).
    pub fn kind_name(&self) -> &'static str {
        match self {
            DeviceEvent::BufferFlush {
                kind: FlushKind::Full,
                ..
            } => "buffer_flush_full",
            DeviceEvent::BufferFlush {
                kind: FlushKind::Premature,
                ..
            } => "buffer_flush_premature",
            DeviceEvent::BufferConflict { .. } => "buffer_conflict",
            DeviceEvent::SlcCombine { .. } => "slc_combine",
            DeviceEvent::PatchSlice { .. } => "patch_slice",
            DeviceEvent::GcBegin { .. } => "gc_begin",
            DeviceEvent::GcEnd { .. } => "gc_end",
            DeviceEvent::L2pLookup {
                outcome: L2pOutcome::Miss,
            } => "l2p_miss",
            DeviceEvent::L2pLookup { .. } => "l2p_hit",
            DeviceEvent::L2pEviction { .. } => "l2p_eviction",
            DeviceEvent::L2pLogFlush => "l2p_log_flush",
            DeviceEvent::Media { op, .. } => match op {
                MediaOp::Program => "media_program",
                MediaOp::Read => "media_read",
                MediaOp::Erase => "media_erase",
            },
            DeviceEvent::ZoneReset { .. } => "zone_reset",
            DeviceEvent::FaultInjected { .. } => "fault_injected",
            DeviceEvent::BlockRetired { .. } => "block_retired",
            DeviceEvent::ReadRetry { .. } => "read_retry",
            DeviceEvent::PowerCut { .. } => "power_cut",
            DeviceEvent::RecoveryReplay { .. } => "recovery_replay",
            DeviceEvent::QueueSubmit { .. } => "queue_submit",
            DeviceEvent::QueueArbitrate { .. } => "queue_arbitrate",
            DeviceEvent::QueueComplete { .. } => "queue_complete",
        }
    }

    /// Index of the event kind into [`CountingSink`] buckets.
    pub fn kind_index(&self) -> usize {
        match self {
            DeviceEvent::BufferFlush {
                kind: FlushKind::Full,
                ..
            } => 0,
            DeviceEvent::BufferFlush {
                kind: FlushKind::Premature,
                ..
            } => 1,
            DeviceEvent::BufferConflict { .. } => 2,
            DeviceEvent::SlcCombine { .. } => 3,
            DeviceEvent::PatchSlice { .. } => 4,
            DeviceEvent::GcBegin { .. } => 5,
            DeviceEvent::GcEnd { .. } => 6,
            DeviceEvent::L2pLookup {
                outcome: L2pOutcome::Miss,
            } => 7,
            DeviceEvent::L2pLookup { .. } => 8,
            DeviceEvent::L2pEviction { .. } => 9,
            DeviceEvent::L2pLogFlush => 10,
            DeviceEvent::Media {
                op: MediaOp::Program,
                ..
            } => 11,
            DeviceEvent::Media {
                op: MediaOp::Read, ..
            } => 12,
            DeviceEvent::Media {
                op: MediaOp::Erase, ..
            } => 13,
            DeviceEvent::ZoneReset { .. } => 14,
            DeviceEvent::FaultInjected { .. } => 15,
            DeviceEvent::BlockRetired { .. } => 16,
            DeviceEvent::ReadRetry { .. } => 17,
            DeviceEvent::PowerCut { .. } => 18,
            DeviceEvent::RecoveryReplay { .. } => 19,
            DeviceEvent::QueueSubmit { .. } => 20,
            DeviceEvent::QueueArbitrate { .. } => 21,
            DeviceEvent::QueueComplete { .. } => 22,
        }
    }

    /// Number of distinct [`DeviceEvent::kind_index`] buckets.
    pub const KIND_COUNT: usize = 23;
}

/// A timestamped event as stored by collecting sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the event (nanoseconds since run start).
    pub time: SimTime,
    /// The event.
    pub event: DeviceEvent,
}

/// Receives the event stream of one or more devices.
///
/// `record` takes `&self` so a sink can be shared between a device and the
/// harness that later drains it; implementations use interior mutability
/// (atomics in the in-tree sinks).
pub trait TraceSink {
    /// Called once per event, in non-decreasing simulation-time order per
    /// device.
    fn record(&self, time: SimTime, event: DeviceEvent);
}

/// A sink that only counts events per kind — no storage, no allocation.
///
/// Useful as an always-on "is the device doing what I think" check and as
/// the cheapest possible attached sink.
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: [AtomicU64; DeviceEvent::KIND_COUNT],
}

impl CountingSink {
    /// Creates a zeroed counting sink.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Events seen of the kind with this [`DeviceEvent::kind_index`].
    pub fn count_of(&self, kind_index: usize) -> u64 {
        self.counts[kind_index].load(Ordering::Relaxed)
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl TraceSink for CountingSink {
    fn record(&self, _time: SimTime, event: DeviceEvent) {
        self.counts[event.kind_index()].fetch_add(1, Ordering::Relaxed);
    }
}

/// The handle device models emit through.
///
/// Cloning is cheap (an `Arc` bump); a disabled probe is a `None` check
/// per event. Devices hold a probe and the harness decides whether (and
/// where) events flow by attaching a sink.
#[derive(Clone, Default)]
pub struct Probe {
    sink: Option<Arc<dyn TraceSink + Send + Sync>>,
}

impl Probe {
    /// A probe with no sink: every `emit` is a branch and nothing more.
    pub fn disabled() -> Probe {
        Probe { sink: None }
    }

    /// A probe forwarding to `sink`.
    pub fn attached(sink: Arc<dyn TraceSink + Send + Sync>) -> Probe {
        Probe { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one event at simulation time `t`.
    #[inline]
    pub fn emit(&self, t: SimTime, event: DeviceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(t, event);
        }
    }
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Probe({})",
            if self.enabled() {
                "attached"
            } else {
                "disabled"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_is_inert() {
        let p = Probe::disabled();
        assert!(!p.enabled());
        p.emit(
            SimTime::from_nanos(5),
            DeviceEvent::L2pLookup {
                outcome: L2pOutcome::Miss,
            },
        );
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let sink = Arc::new(CountingSink::new());
        let p = Probe::attached(sink.clone());
        assert!(p.enabled());
        let t = SimTime::from_nanos(1);
        p.emit(
            t,
            DeviceEvent::BufferFlush {
                zone: ZoneId(0),
                kind: FlushKind::Full,
                slices: 16,
            },
        );
        p.emit(
            t,
            DeviceEvent::BufferFlush {
                zone: ZoneId(1),
                kind: FlushKind::Premature,
                slices: 3,
            },
        );
        p.emit(t, DeviceEvent::ZoneReset { zone: ZoneId(0) });
        assert_eq!(sink.total(), 3);
        let full = DeviceEvent::BufferFlush {
            zone: ZoneId(0),
            kind: FlushKind::Full,
            slices: 16,
        };
        assert_eq!(sink.count_of(full.kind_index()), 1);
    }

    #[test]
    fn kind_names_are_distinct_for_distinct_indices() {
        let events = [
            DeviceEvent::BufferFlush {
                zone: ZoneId(0),
                kind: FlushKind::Full,
                slices: 1,
            },
            DeviceEvent::BufferFlush {
                zone: ZoneId(0),
                kind: FlushKind::Premature,
                slices: 1,
            },
            DeviceEvent::BufferConflict { zone: ZoneId(0) },
            DeviceEvent::SlcCombine {
                zone: ZoneId(0),
                staged_slices: 1,
            },
            DeviceEvent::PatchSlice {
                zone: ZoneId(0),
                slices: 1,
            },
            DeviceEvent::GcBegin { valid_slices: 1 },
            DeviceEvent::GcEnd { migrated_slices: 1 },
            DeviceEvent::L2pLookup {
                outcome: L2pOutcome::Miss,
            },
            DeviceEvent::L2pLookup {
                outcome: L2pOutcome::HitZone,
            },
            DeviceEvent::L2pEviction { count: 1 },
            DeviceEvent::L2pLogFlush,
            DeviceEvent::Media {
                op: MediaOp::Program,
                cell: CellType::Slc,
                bytes: 4096,
            },
            DeviceEvent::Media {
                op: MediaOp::Read,
                cell: CellType::Tlc,
                bytes: 4096,
            },
            DeviceEvent::Media {
                op: MediaOp::Erase,
                cell: CellType::Qlc,
                bytes: 0,
            },
            DeviceEvent::ZoneReset { zone: ZoneId(0) },
            DeviceEvent::FaultInjected {
                kind: FaultKind::Program,
                chip: 0,
                block: 3,
            },
            DeviceEvent::BlockRetired { chip: 1, block: 4 },
            DeviceEvent::ReadRetry { steps: 2 },
            DeviceEvent::PowerCut { lost_slices: 7 },
            DeviceEvent::RecoveryReplay {
                recovered_slices: 5,
                lost_slices: 7,
            },
            DeviceEvent::QueueSubmit {
                queue: 0,
                backlog: 2,
            },
            DeviceEvent::QueueArbitrate {
                queue: 1,
                wait_ns: 350,
            },
            DeviceEvent::QueueComplete {
                queue: 0,
                inflight: 3,
            },
        ];
        let mut seen_idx = std::collections::HashSet::new();
        let mut seen_name = std::collections::HashSet::new();
        for e in events {
            assert!(e.kind_index() < DeviceEvent::KIND_COUNT);
            seen_idx.insert(e.kind_index());
            seen_name.insert(e.kind_name());
        }
        assert_eq!(seen_idx.len(), DeviceEvent::KIND_COUNT);
        assert_eq!(seen_name.len(), DeviceEvent::KIND_COUNT);
    }
}
