//! Causal IO-lifecycle spans on the simulated clock (the `conzone-span`
//! layer).
//!
//! [`DeviceEvent`](crate::DeviceEvent) tracing answers *when* something
//! happened; spans answer *why an IO took as long as it did*. Each host
//! request opens a **root** span ([`SpanKind::IoRead`] /
//! [`SpanKind::IoWrite`] / …) covering its submit-to-completion window on
//! the DES clock, and the device model child-scopes the phases the request
//! blocked on — mapping fetches, media data reads, the write path, staged
//! combines, GC stalls, L2P log flushes and erases. Child kinds map
//! one-to-one onto `TimeBreakdown` categories
//! ([`SpanKind::breakdown_category`]), so summing the *self time* of all
//! closed spans per kind reproduces the breakdown table exactly — the
//! reconciliation tested end to end in `tests/observability.rs`.
//!
//! The [`SpanRecorder`] is owned by the (single-threaded) device model:
//! `open`/`close` maintain a stack of in-flight spans and emit one
//! [`SpanRecord`] per close to the attached [`SpanSink`]. With no sink
//! attached every call is a single branch, preserving the null-probe
//! overhead envelope.

use std::fmt;
use std::sync::Arc;

use crate::time::SimTime;

/// The phase a span attributes simulated time to.
///
/// Root kinds (`Io*`, `ZoneReset`) cover a whole host command; child kinds
/// cover one request-blocking activity inside it and correspond to one
/// `TimeBreakdown` category each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Root: one host read command, submit to completion.
    IoRead,
    /// Root: one host write command, submit to completion.
    IoWrite,
    /// Root: one host zone-append command, submit to completion.
    IoAppend,
    /// Root: one host flush command, submit to completion.
    IoFlush,
    /// Root: one zone-reset command, submit to completion.
    ZoneReset,
    /// Mapping-table fetches on L2P cache misses (read path Ⅱ).
    MapFetch,
    /// Flash data reads serving a host read (read path ③).
    DataRead,
    /// The write path: buffer transfers, flushes and SLC programs. Its
    /// *self time* excludes the nested combine / GC / log children, like
    /// the exclusive `write_path` breakdown charge.
    WritePath,
    /// Reading staged fragments back out of SLC (combine path ③, §III-B).
    CombineRead,
    /// An SLC garbage-collection pass blocking the host request.
    GcStall,
    /// L2P persistence-log flushes blocking the host request (§III-E).
    L2pLog,
    /// A zone-reset superblock erase.
    Erase,
    /// Root: one queued host command's full lifecycle on the queue-pair
    /// host model, submission-queue doorbell to completion posting.
    QueueCmd,
    /// Time a queued command spent waiting between its doorbell and the
    /// arbitration grant that dispatched it to the device.
    QueueWait,
}

impl SpanKind {
    /// Number of distinct span kinds (indexable via [`SpanKind::index`]).
    pub const KIND_COUNT: usize = 14;

    /// Stable short name of the kind, used by every exporter.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::IoRead => "io_read",
            SpanKind::IoWrite => "io_write",
            SpanKind::IoAppend => "io_append",
            SpanKind::IoFlush => "io_flush",
            SpanKind::ZoneReset => "zone_reset",
            SpanKind::MapFetch => "map_fetch",
            SpanKind::DataRead => "data_read",
            SpanKind::WritePath => "write_path",
            SpanKind::CombineRead => "combine_read",
            SpanKind::GcStall => "gc_stall",
            SpanKind::L2pLog => "l2p_log",
            SpanKind::Erase => "erase",
            SpanKind::QueueCmd => "queue_cmd",
            SpanKind::QueueWait => "queue_wait",
        }
    }

    /// Dense index of the kind into attribution buckets.
    pub fn index(&self) -> usize {
        match self {
            SpanKind::IoRead => 0,
            SpanKind::IoWrite => 1,
            SpanKind::IoAppend => 2,
            SpanKind::IoFlush => 3,
            SpanKind::ZoneReset => 4,
            SpanKind::MapFetch => 5,
            SpanKind::DataRead => 6,
            SpanKind::WritePath => 7,
            SpanKind::CombineRead => 8,
            SpanKind::GcStall => 9,
            SpanKind::L2pLog => 10,
            SpanKind::Erase => 11,
            SpanKind::QueueCmd => 12,
            SpanKind::QueueWait => 13,
        }
    }

    /// Whether this kind opens a new IO lifecycle (a root span).
    pub fn is_root(&self) -> bool {
        matches!(
            self,
            SpanKind::IoRead
                | SpanKind::IoWrite
                | SpanKind::IoAppend
                | SpanKind::IoFlush
                | SpanKind::ZoneReset
                | SpanKind::QueueCmd
        )
    }

    /// The `TimeBreakdown` category this kind's *self time* accumulates
    /// into, or `None` for root kinds (their self time is queueing and
    /// host overhead, which the breakdown deliberately excludes).
    pub fn breakdown_category(&self) -> Option<&'static str> {
        match self {
            SpanKind::IoRead => None,
            SpanKind::IoWrite => None,
            SpanKind::IoAppend => None,
            SpanKind::IoFlush => None,
            SpanKind::ZoneReset => None,
            SpanKind::MapFetch => Some("mapping_fetch"),
            SpanKind::DataRead => Some("data_read"),
            SpanKind::WritePath => Some("write_path"),
            SpanKind::CombineRead => Some("combine_read"),
            SpanKind::GcStall => Some("gc"),
            SpanKind::L2pLog => Some("l2p_log"),
            SpanKind::Erase => Some("erase"),
            SpanKind::QueueCmd => None,
            SpanKind::QueueWait => Some("queue_wait"),
        }
    }
}

/// One closed span, emitted by the [`SpanRecorder`] at close time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id of this span (1-based; ids are assigned in open order,
    /// so a parent's id is always smaller than its children's).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a top-of-stack span.
    pub parent: u64,
    /// The IO lifecycle this span belongs to (root spans allocate a fresh
    /// sequence number; 0 for spans emitted outside any root, e.g. an
    /// internal flush during zone close).
    pub io: u64,
    /// What the span attributes time to.
    pub kind: SpanKind,
    /// When the phase began on the simulated clock.
    pub start: SimTime,
    /// When the phase ended on the simulated clock.
    pub end: SimTime,
}

impl SpanRecord {
    /// The span's inclusive duration in nanoseconds (children included).
    pub fn duration_nanos(&self) -> u64 {
        self.end.saturating_since(self.start).as_nanos()
    }
}

/// Receives closed spans from one device's [`SpanRecorder`].
///
/// Like `TraceSink`, `record` takes `&self` so the sink can be shared with
/// the harness that later drains it.
pub trait SpanSink {
    /// Called once per span, at its close. Closes arrive children-first
    /// (a parent closes after everything nested in it).
    fn record(&self, span: SpanRecord);
}

/// The stack of in-flight spans for one device.
///
/// The device model owns one recorder and brackets each phase with
/// [`open`](SpanRecorder::open) / [`close`](SpanRecorder::close). With no
/// sink attached (the default) both are a single branch. Error paths that
/// abandon a request mid-phase roll the stack back with
/// [`cancel_to`](SpanRecorder::cancel_to), so nesting stays balanced per
/// IO even when a command fails.
#[derive(Default)]
pub struct SpanRecorder {
    sink: Option<Arc<dyn SpanSink + Send + Sync>>,
    stack: Vec<OpenSpan>,
    next_id: u64,
    io_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    id: u64,
    io: u64,
    kind: SpanKind,
    start: SimTime,
}

impl SpanRecorder {
    /// A recorder with no sink: every call is a branch and nothing more.
    pub fn disabled() -> SpanRecorder {
        SpanRecorder::default()
    }

    /// A recorder forwarding closed spans to `sink`.
    pub fn attached(sink: Arc<dyn SpanSink + Send + Sync>) -> SpanRecorder {
        SpanRecorder {
            sink: Some(sink),
            stack: Vec::new(),
            next_id: 0,
            io_seq: 0,
        }
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a span of `kind` at simulated time `t`. Root kinds start a
    /// new IO lifecycle; child kinds inherit the enclosing span's IO.
    #[inline]
    pub fn open(&mut self, t: SimTime, kind: SpanKind) {
        if self.sink.is_none() {
            return;
        }
        let io = if kind.is_root() {
            self.io_seq += 1;
            self.io_seq
        } else {
            self.stack.last().map_or(0, |s| s.io)
        };
        self.next_id += 1;
        self.stack.push(OpenSpan {
            id: self.next_id,
            io,
            kind,
            start: t,
        });
    }

    /// Closes the innermost open span at simulated time `t`, emitting its
    /// record. A close with nothing open (recorder disabled, or the stack
    /// was cancelled) is a no-op.
    #[inline]
    pub fn close(&mut self, t: SimTime) {
        let Some(open) = self.stack.pop() else {
            return;
        };
        if let Some(sink) = &self.sink {
            sink.record(SpanRecord {
                id: open.id,
                parent: self.stack.last().map_or(0, |s| s.id),
                io: open.io,
                kind: open.kind,
                start: open.start,
                end: t.max(open.start),
            });
        }
    }

    /// Number of spans currently open.
    #[inline]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Discards every span opened above `depth` without emitting records —
    /// the error-path cleanup when a command fails with phases in flight.
    #[inline]
    pub fn cancel_to(&mut self, depth: usize) {
        self.stack.truncate(depth);
    }
}

impl fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SpanRecorder({}, depth {})",
            if self.enabled() {
                "attached"
            } else {
                "disabled"
            },
            self.stack.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct VecSink(Mutex<Vec<SpanRecord>>);

    impl SpanSink for VecSink {
        fn record(&self, span: SpanRecord) {
            self.0.lock().unwrap().push(span);
        }
    }

    const ALL_KINDS: [SpanKind; SpanKind::KIND_COUNT] = [
        SpanKind::IoRead,
        SpanKind::IoWrite,
        SpanKind::IoAppend,
        SpanKind::IoFlush,
        SpanKind::ZoneReset,
        SpanKind::MapFetch,
        SpanKind::DataRead,
        SpanKind::WritePath,
        SpanKind::CombineRead,
        SpanKind::GcStall,
        SpanKind::L2pLog,
        SpanKind::Erase,
        SpanKind::QueueCmd,
        SpanKind::QueueWait,
    ];

    #[test]
    fn kind_names_and_indices_are_distinct() {
        let mut idx = std::collections::HashSet::new();
        let mut names = std::collections::HashSet::new();
        for k in ALL_KINDS {
            assert!(k.index() < SpanKind::KIND_COUNT);
            idx.insert(k.index());
            names.insert(k.name());
        }
        assert_eq!(idx.len(), SpanKind::KIND_COUNT);
        assert_eq!(names.len(), SpanKind::KIND_COUNT);
    }

    #[test]
    fn roots_have_no_breakdown_category_and_children_do() {
        for k in ALL_KINDS {
            assert_eq!(
                k.breakdown_category().is_none(),
                k.is_root(),
                "{:?} category/root mismatch",
                k
            );
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = SpanRecorder::disabled();
        assert!(!r.enabled());
        r.open(SimTime::from_nanos(1), SpanKind::IoWrite);
        assert_eq!(r.depth(), 0);
        r.close(SimTime::from_nanos(2));
    }

    #[test]
    fn nesting_assigns_parent_and_io() {
        let sink = Arc::new(VecSink::default());
        let mut r = SpanRecorder::attached(sink.clone());
        r.open(SimTime::from_nanos(0), SpanKind::IoWrite);
        r.open(SimTime::from_nanos(1), SpanKind::WritePath);
        r.open(SimTime::from_nanos(2), SpanKind::GcStall);
        r.close(SimTime::from_nanos(5)); // gc
        r.close(SimTime::from_nanos(6)); // write path
        r.close(SimTime::from_nanos(7)); // root
        r.open(SimTime::from_nanos(8), SpanKind::IoRead);
        r.close(SimTime::from_nanos(9));

        let spans = sink.0.lock().unwrap().clone();
        assert_eq!(spans.len(), 4);
        let gc = &spans[0];
        let wp = &spans[1];
        let root = &spans[2];
        let read = &spans[3];
        assert_eq!(gc.kind, SpanKind::GcStall);
        assert_eq!(gc.parent, wp.id);
        assert_eq!(wp.parent, root.id);
        assert_eq!(root.parent, 0);
        assert_eq!(gc.io, root.io);
        assert_eq!(read.io, root.io + 1, "new root, new IO");
        assert!(root.id < wp.id && wp.id < gc.id, "ids follow open order");
        assert_eq!(gc.duration_nanos(), 3);
    }

    #[test]
    fn cancel_to_discards_in_flight_spans() {
        let sink = Arc::new(VecSink::default());
        let mut r = SpanRecorder::attached(sink.clone());
        r.open(SimTime::from_nanos(0), SpanKind::IoWrite);
        let d = r.depth();
        r.open(SimTime::from_nanos(1), SpanKind::WritePath);
        r.open(SimTime::from_nanos(2), SpanKind::L2pLog);
        r.cancel_to(d);
        assert_eq!(r.depth(), 1);
        r.close(SimTime::from_nanos(3));
        let spans = sink.0.lock().unwrap().clone();
        assert_eq!(spans.len(), 1, "only the root survived");
        assert_eq!(spans[0].kind, SpanKind::IoWrite);
    }
}
