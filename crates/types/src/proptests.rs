//! Property-based tests of address arithmetic and geometry encoding.

use proptest::prelude::*;

use crate::{ChipId, DeviceConfig, Geometry, Lpn, LpnRange, SuperblockId, ZonePadding};

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    (
        1usize..4,  // channels
        1usize..4,  // chips per channel
        2usize..12, // blocks per chip
        1usize..3,  // slc blocks per chip
        1usize..6,  // programming units per block
        1usize..5,  // pages per unit
        1usize..4,  // planes per chip
    )
        .prop_map(|(ch, cpc, extra_blocks, slc, upb, ppu, planes)| Geometry {
            channels: ch,
            chips_per_channel: cpc,
            blocks_per_chip: slc + extra_blocks,
            slc_blocks_per_chip: slc,
            pages_per_block: upb * ppu,
            page_bytes: 16 * 1024,
            program_unit_bytes: ppu * 16 * 1024,
            planes_per_chip: planes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Generated geometries always validate.
    #[test]
    fn arbitrary_geometries_validate(g in arb_geometry()) {
        prop_assert!(g.validate().is_ok());
    }

    /// PPA encode/decode is a bijection over the whole array.
    #[test]
    fn ppa_roundtrip(g in arb_geometry(), seed in any::<u64>()) {
        let chip = ChipId(seed % g.nchips() as u64);
        let block = (seed / 7) as usize % g.blocks_per_chip;
        let page = (seed / 11) as usize % g.pages_per_block;
        let slice = (seed / 13) as usize % g.slices_per_page();
        let ppa = g.encode_ppa(chip, block, page, slice);
        let parts = g.decode_ppa(ppa);
        prop_assert_eq!(parts.chip, chip);
        prop_assert_eq!(parts.block, block);
        prop_assert_eq!(parts.page, page);
        prop_assert_eq!(parts.slice, slice);
    }

    /// Superblock slice addressing is a bijection and never leaves its
    /// superblock.
    #[test]
    fn superblock_slice_roundtrip(g in arb_geometry(), seed in any::<u64>()) {
        let sb = SuperblockId(seed % g.blocks_per_chip as u64);
        let offset = (seed / 3) % g.slices_per_superblock();
        let ppa = g.superblock_slice(sb, offset);
        let (sb2, off2) = g.superblock_offset_of(ppa);
        prop_assert_eq!(sb2, sb);
        prop_assert_eq!(off2, offset);
        prop_assert_eq!(g.decode_ppa(ppa).block as u64, sb.raw());
    }

    /// Byte-range to page-range conversion covers exactly the requested
    /// bytes.
    #[test]
    fn lpn_range_covers_bytes(offset in 0u64..1 << 40, len in 1u64..1 << 20) {
        let range = LpnRange::covering_bytes(offset, len).expect("non-empty");
        prop_assert!(range.start.byte_offset() <= offset);
        prop_assert!(range.end().byte_offset() >= offset + len);
        // Tight: shrinking either side would lose bytes.
        prop_assert!(range.start.byte_offset() + 4096 > offset);
        prop_assert!(range.end().byte_offset() - 4096 < offset + len);
        prop_assert!(range.contains(Lpn::containing(offset)));
        prop_assert!(range.contains(Lpn::containing(offset + len - 1)));
    }

    /// Validated configs keep their derived quantities self-consistent.
    #[test]
    fn config_invariants(g in arb_geometry()) {
        // Chunks must divide zones: use the superpage as a safe chunk.
        let chunk = g.superpage_bytes().min(g.superblock_bytes());
        let zone_ok = {
            let padded = g.superblock_bytes().next_power_of_two();
            padded.is_multiple_of(chunk)
        };
        prop_assume!(zone_ok);
        let cfg = DeviceConfig::builder(g)
            .chunk_bytes(chunk)
            .zone_padding(ZonePadding::SlcAligned)
            .build();
        prop_assume!(cfg.is_ok());
        let cfg = cfg.unwrap();
        prop_assert!(cfg.zone_size_bytes().is_power_of_two());
        prop_assert!(cfg.zone_size_bytes() >= cfg.zone_backing_bytes());
        prop_assert_eq!(cfg.zone_size_bytes() % cfg.chunk_bytes, 0);
        prop_assert_eq!(
            cfg.capacity_bytes(),
            cfg.zone_size_bytes() * cfg.zone_count() as u64
        );
        prop_assert_eq!(
            cfg.zone_patch_slices() * crate::SLICE_BYTES,
            cfg.zone_size_bytes() - cfg.zone_backing_bytes()
        );
    }
}
