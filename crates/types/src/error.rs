//! Error types shared across the emulator crates.

use core::fmt;

use crate::addr::{Lpn, ZoneId};
use crate::time::SimTime;

/// An invalid emulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The human-readable reason the configuration is invalid.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Errors raised by a device model while processing I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The request touches bytes beyond the device capacity.
    OutOfRange {
        /// First out-of-range byte.
        offset: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The request offset or length is not aligned to the 4 KiB sector.
    Unaligned {
        /// Offending offset in bytes.
        offset: u64,
        /// Offending length in bytes.
        len: u64,
    },
    /// A zoned write did not land on the zone's write pointer.
    NotWritePointer {
        /// Zone being written.
        zone: ZoneId,
        /// Expected next logical page.
        expected: Lpn,
        /// Logical page the host attempted to write.
        got: Lpn,
    },
    /// A write crossed a zone boundary.
    ZoneBoundary {
        /// Zone where the write started.
        zone: ZoneId,
    },
    /// The zone is full (write pointer at capacity).
    ZoneFull {
        /// The full zone.
        zone: ZoneId,
    },
    /// The zone is offline or otherwise not writable.
    ZoneNotWritable {
        /// The zone in question.
        zone: ZoneId,
    },
    /// Opening one more zone would exceed the configured open-zone limit.
    TooManyOpenZones {
        /// Configured maximum number of open zones.
        limit: usize,
    },
    /// The request mixed zones or kinds in a way the device cannot service.
    Unsupported(String),
    /// A read touched logical pages that have never been written.
    UnwrittenRead {
        /// First unwritten logical page.
        lpn: Lpn,
    },
    /// The device ran out of free space (no free superblocks for the
    /// requested media).
    NoFreeSpace {
        /// Simulated time the exhaustion was detected.
        at: SimTime,
        /// Human-readable description of the exhausted resource.
        what: String,
    },
    /// Request data length does not match the request length.
    DataLengthMismatch {
        /// Length declared by the request, in bytes.
        expected: u64,
        /// Length of the attached data buffer, in bytes.
        got: u64,
    },
    /// An internal accounting invariant was violated — an FTL bug, not a
    /// host error. Device models return this instead of panicking so a
    /// long seeded run surfaces the broken state as a typed error.
    Internal(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfRange { offset, capacity } => {
                write!(f, "offset {offset} beyond capacity {capacity}")
            }
            DeviceError::Unaligned { offset, len } => {
                write!(f, "offset {offset} / length {len} not 4 KiB aligned")
            }
            DeviceError::NotWritePointer {
                zone,
                expected,
                got,
            } => write!(
                f,
                "unaligned zone write in {zone}: expected {expected}, got {got}"
            ),
            DeviceError::ZoneBoundary { zone } => {
                write!(f, "write crosses the boundary of {zone}")
            }
            DeviceError::ZoneFull { zone } => write!(f, "{zone} is full"),
            DeviceError::ZoneNotWritable { zone } => write!(f, "{zone} is not writable"),
            DeviceError::TooManyOpenZones { limit } => {
                write!(f, "open zone limit {limit} exceeded")
            }
            DeviceError::Unsupported(what) => write!(f, "unsupported request: {what}"),
            DeviceError::UnwrittenRead { lpn } => {
                write!(f, "read of unwritten logical page {lpn}")
            }
            DeviceError::NoFreeSpace { at, what } => {
                write!(f, "out of free space at {at}: {what}")
            }
            DeviceError::DataLengthMismatch { expected, got } => {
                write!(f, "request declares {expected} bytes but carries {got}")
            }
            DeviceError::Internal(what) => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_prose() {
        let e = ConfigError::new("write_buffers must be non-zero");
        assert!(e.to_string().starts_with("invalid configuration"));
        let e = DeviceError::ZoneFull { zone: ZoneId(3) };
        assert_eq!(e.to_string(), "ZoneId(3) is full");
        let e = DeviceError::Unaligned {
            offset: 17,
            len: 100,
        };
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<DeviceError>();
    }
}
