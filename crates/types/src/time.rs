//! Simulated-time primitives.
//!
//! The emulator advances a virtual clock with nanosecond resolution. Two
//! newtypes keep instants and durations apart at compile time:
//! [`SimTime`] is a point on the simulated timeline and [`SimDuration`] is a
//! span between two points.
//!
//! ```
//! use conzone_types::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let end = start + SimDuration::from_micros(32);
//! assert_eq!(end - start, SimDuration::from_micros(32));
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this span, as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds in this span, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration of transferring `bytes` at `bytes_per_sec`, rounded up to the
    /// next nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        // xtask-lint: allow(hot-path-effects) — config invariant: a zero transfer rate is rejected at validation, so hitting this is a harness bug
        assert!(bytes_per_sec > 0, "transfer rate must be non-zero");
        // ns = bytes * 1e9 / rate, using u128 to avoid overflow.
        let ns = (u128::from(bytes) * 1_000_000_000u128).div_ceil(u128::from(bytes_per_sec));
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime from an earlier one"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow when subtracting duration"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_nanos(500);
        let d = SimDuration::from_nanos(200);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn constructors_scale() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 3 bytes/s is 333_333_333.33 ns, rounded up.
        let d = SimDuration::for_transfer(1, 3);
        assert_eq!(d.as_nanos(), 333_333_334);
        // Exact division stays exact: 4 KiB at 4 KiB/s is one second.
        let d = SimDuration::for_transfer(4096, 4096);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn transfer_time_matches_channel_model() {
        // 16 KiB page at 3200 MiB/s: 16384 / (3200 * 1 MiB) s = 4.8828 us.
        let d = SimDuration::for_transfer(16384, 3200 * 1024 * 1024);
        assert!((d.as_micros_f64() - 4.8828).abs() < 0.01, "{d}");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_subtraction_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(75).to_string(), "75.0us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
