//! Physical organisation of the emulated flash array.
//!
//! Terminology follows paper §II-A: a 16 KiB *flash page* is the read unit;
//! multiple flash pages form a *flash block* (the erase unit); blocks at the
//! same per-chip offset across all chips form a *superblock*; the
//! multi-level-cell *programming unit* spans several flash pages, and the
//! programming units at the same offset across all chips form a *superpage*.
//! SLC blocks program partially at 4 KiB granularity.

use serde::{Deserialize, Serialize};

use crate::addr::{ChannelId, ChipId, Lpn, Ppa, SuperblockId, ZoneId, SLICE_BYTES};
use crate::error::ConfigError;

/// Static geometry of the flash array.
///
/// Use [`Geometry::validate`] (done automatically by
/// [`DeviceConfigBuilder`](crate::DeviceConfigBuilder)) before relying on the
/// derived quantities.
///
/// ```
/// use conzone_types::Geometry;
///
/// let g = Geometry::consumer_1p5gb();
/// g.validate()?;
/// assert_eq!(g.nchips(), 4);
/// assert_eq!(g.superpage_bytes(), 384 * 1024); // matches paper §II-B
/// # Ok::<(), conzone_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of independent flash channels.
    pub channels: usize,
    /// Chips (dies) attached to each channel.
    pub chips_per_channel: usize,
    /// Flash blocks per chip, *including* the leading SLC blocks.
    pub blocks_per_chip: usize,
    /// The first `slc_blocks_per_chip` blocks of every chip are programmed as
    /// SLC and serve as the secondary write buffer (paper §III-B).
    pub slc_blocks_per_chip: usize,
    /// Flash pages per block.
    pub pages_per_block: usize,
    /// Bytes per flash page (16 KiB in consumer devices, paper §II-A).
    pub page_bytes: usize,
    /// Programming unit of the normal (multi-level-cell) area, in bytes.
    /// Must be a whole number of flash pages. The paper's evaluation uses
    /// 96 KiB (§IV-A).
    pub program_unit_bytes: usize,
    /// Independent planes per chip: operations on blocks in different
    /// planes of one die proceed concurrently (block *b* lives in plane
    /// `b mod planes`). 1 models a single-plane die.
    pub planes_per_chip: usize,
}

impl Geometry {
    /// The evaluation geometry of paper §IV-A: 2 channels × 2 chips,
    /// TLC-style 96 KiB programming unit, 384 KiB superpage, ~1.5 GB of
    /// normal capacity plus an SLC region.
    pub fn consumer_1p5gb() -> Geometry {
        Geometry {
            channels: 2,
            chips_per_channel: 2,
            // 96 normal superblocks of 15 MiB ≈ 1.44 GB + 8 SLC superblocks.
            blocks_per_chip: 104,
            slc_blocks_per_chip: 8,
            pages_per_block: 240,
            page_bytes: 16 * 1024,
            program_unit_bytes: 96 * 1024,
            planes_per_chip: 1,
        }
    }

    /// A small geometry for unit tests and examples: 2 channels × 2 chips,
    /// 64 KiB programming unit (QLC-style, power-of-two superblocks),
    /// 1 MiB zones.
    pub fn tiny() -> Geometry {
        Geometry {
            channels: 2,
            chips_per_channel: 2,
            blocks_per_chip: 20,
            slc_blocks_per_chip: 4,
            pages_per_block: 16,
            page_bytes: 16 * 1024,
            program_unit_bytes: 64 * 1024,
            planes_per_chip: 1,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any field is zero, when the programming
    /// unit is not a whole number of pages, when pages-per-block is not a
    /// whole number of programming units, when the page size is not a whole
    /// number of 4 KiB slices, or when no normal blocks remain after the SLC
    /// region.
    // xtask-effect: cold — config-time validation: runs once at device
    // construction, never per IO (and stops the name-union resolver charging
    // `request.validate()` on the submit path to it)
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn nonzero(v: usize, what: &str) -> Result<(), ConfigError> {
            if v == 0 {
                Err(ConfigError::new(format!("{what} must be non-zero")))
            } else {
                Ok(())
            }
        }
        nonzero(self.channels, "channels")?;
        nonzero(self.chips_per_channel, "chips_per_channel")?;
        nonzero(self.blocks_per_chip, "blocks_per_chip")?;
        nonzero(self.pages_per_block, "pages_per_block")?;
        nonzero(self.page_bytes, "page_bytes")?;
        nonzero(self.program_unit_bytes, "program_unit_bytes")?;
        if !self.page_bytes.is_multiple_of(SLICE_BYTES as usize) {
            return Err(ConfigError::new(format!(
                "page_bytes {} is not a multiple of the 4 KiB slice",
                self.page_bytes
            )));
        }
        if !self.program_unit_bytes.is_multiple_of(self.page_bytes) {
            return Err(ConfigError::new(format!(
                "program_unit_bytes {} is not a whole number of {}-byte pages",
                self.program_unit_bytes, self.page_bytes
            )));
        }
        if !self.pages_per_block.is_multiple_of(self.pages_per_unit()) {
            return Err(ConfigError::new(format!(
                "pages_per_block {} is not a whole number of {}-page programming units",
                self.pages_per_block,
                self.pages_per_unit()
            )));
        }
        if self.planes_per_chip == 0 {
            return Err(ConfigError::new("planes_per_chip must be non-zero"));
        }
        if self.slc_blocks_per_chip >= self.blocks_per_chip {
            return Err(ConfigError::new(format!(
                "slc_blocks_per_chip {} leaves no normal blocks (blocks_per_chip {})",
                self.slc_blocks_per_chip, self.blocks_per_chip
            )));
        }
        Ok(())
    }

    /// Total number of chips.
    #[inline]
    pub fn nchips(&self) -> usize {
        self.channels * self.chips_per_channel
    }

    /// The channel a chip is attached to (chips stripe across channels).
    #[inline]
    pub fn channel_of(&self, chip: ChipId) -> ChannelId {
        ChannelId(chip.raw() % self.channels as u64)
    }

    /// 4 KiB slices per flash page.
    #[inline]
    pub fn slices_per_page(&self) -> usize {
        self.page_bytes / SLICE_BYTES as usize
    }

    /// Flash pages per programming unit of the normal area.
    #[inline]
    pub fn pages_per_unit(&self) -> usize {
        self.program_unit_bytes / self.page_bytes
    }

    /// 4 KiB slices per programming unit of the normal area.
    #[inline]
    pub fn slices_per_unit(&self) -> usize {
        self.program_unit_bytes / SLICE_BYTES as usize
    }

    /// Programming units per flash block.
    #[inline]
    pub fn units_per_block(&self) -> usize {
        self.pages_per_block / self.pages_per_unit()
    }

    /// Bytes per flash block.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// 4 KiB slices per flash block.
    #[inline]
    pub fn slices_per_block(&self) -> u64 {
        self.pages_per_block as u64 * self.slices_per_page() as u64
    }

    /// Bytes per superpage: one programming unit on every chip (the write
    /// buffer size, paper §II-A).
    #[inline]
    pub fn superpage_bytes(&self) -> u64 {
        self.program_unit_bytes as u64 * self.nchips() as u64
    }

    /// 4 KiB slices per superpage.
    #[inline]
    pub fn slices_per_superpage(&self) -> u64 {
        self.superpage_bytes() / SLICE_BYTES
    }

    /// Bytes per superblock (one block on every chip).
    #[inline]
    pub fn superblock_bytes(&self) -> u64 {
        self.block_bytes() * self.nchips() as u64
    }

    /// 4 KiB slices per superblock.
    #[inline]
    pub fn slices_per_superblock(&self) -> u64 {
        self.slices_per_block() * self.nchips() as u64
    }

    /// Superblocks in the SLC region.
    #[inline]
    pub fn slc_superblocks(&self) -> usize {
        self.slc_blocks_per_chip
    }

    /// Superblocks in the normal (zoned) region.
    #[inline]
    pub fn normal_superblocks(&self) -> usize {
        self.blocks_per_chip - self.slc_blocks_per_chip
    }

    /// Total 4 KiB slices across the whole array (both regions).
    #[inline]
    pub fn total_slices(&self) -> u64 {
        self.nchips() as u64 * self.blocks_per_chip as u64 * self.slices_per_block()
    }

    /// Encodes a physical slice address.
    ///
    /// # Panics
    ///
    /// Debug-asserts that every component is within the geometry.
    #[inline]
    pub fn encode_ppa(&self, chip: ChipId, block: usize, page: usize, slice: usize) -> Ppa {
        debug_assert!((chip.raw() as usize) < self.nchips());
        debug_assert!(block < self.blocks_per_chip);
        debug_assert!(page < self.pages_per_block);
        debug_assert!(slice < self.slices_per_page());
        let linear = ((chip.raw() * self.blocks_per_chip as u64 + block as u64)
            * self.pages_per_block as u64
            + page as u64)
            * self.slices_per_page() as u64
            + slice as u64;
        Ppa(linear)
    }

    /// Decodes a physical slice address into its components.
    #[inline]
    pub fn decode_ppa(&self, ppa: Ppa) -> PpaParts {
        let spp = self.slices_per_page() as u64;
        let slice = (ppa.raw() % spp) as usize;
        let page_linear = ppa.raw() / spp;
        let page = (page_linear % self.pages_per_block as u64) as usize;
        let block_linear = page_linear / self.pages_per_block as u64;
        let block = (block_linear % self.blocks_per_chip as u64) as usize;
        let chip = ChipId(block_linear / self.blocks_per_chip as u64);
        PpaParts {
            chip,
            block,
            page,
            slice,
        }
    }

    /// Total independent planes across the array.
    #[inline]
    pub fn nplanes(&self) -> usize {
        self.nchips() * self.planes_per_chip
    }

    /// The plane resource index of a block on a chip.
    #[inline]
    pub fn plane_of(&self, chip: ChipId, block: usize) -> usize {
        chip.raw() as usize * self.planes_per_chip + block % self.planes_per_chip
    }

    /// Whether a physical address lies in the SLC region.
    #[inline]
    pub fn is_slc(&self, ppa: Ppa) -> bool {
        self.decode_ppa(ppa).block < self.slc_blocks_per_chip
    }

    /// Physical slice address of slice-offset `offset` within superblock
    /// `sb`, following the fixed write-pointer iteration rule (paper §III-B):
    /// consecutive programming units stripe round-robin across chips, and
    /// slices fill sequentially inside a unit.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the superblock or `sb` outside the
    /// array.
    pub fn superblock_slice(&self, sb: SuperblockId, offset: u64) -> Ppa {
        // xtask-lint: allow(hot-path-effects) — documented precondition: an out-of-superblock offset is a harness bug and aborting is the correct response
        assert!(
            offset < self.slices_per_superblock(),
            "slice offset {offset} outside superblock ({} slices)",
            self.slices_per_superblock()
        );
        // xtask-lint: allow(hot-path-effects) — documented precondition: an out-of-array superblock is a harness bug and aborting is the correct response
        assert!(
            (sb.raw() as usize) < self.blocks_per_chip,
            "superblock {sb} outside array"
        );
        let spu = self.slices_per_unit() as u64;
        let unit = offset / spu;
        let within = offset % spu;
        let chip = ChipId(unit % self.nchips() as u64);
        let unit_in_block = (unit / self.nchips() as u64) as usize;
        let page = unit_in_block * self.pages_per_unit()
            + (within / self.slices_per_page() as u64) as usize;
        let slice = (within % self.slices_per_page() as u64) as usize;
        self.encode_ppa(chip, sb.raw() as usize, page, slice)
    }

    /// Inverse of [`Geometry::superblock_slice`]: the (superblock,
    /// slice-offset) pair containing `ppa`.
    pub fn superblock_offset_of(&self, ppa: Ppa) -> (SuperblockId, u64) {
        let parts = self.decode_ppa(ppa);
        let unit_in_block = parts.page / self.pages_per_unit();
        let page_in_unit = parts.page % self.pages_per_unit();
        let unit = unit_in_block as u64 * self.nchips() as u64 + parts.chip.raw();
        let within = page_in_unit as u64 * self.slices_per_page() as u64 + parts.slice as u64;
        let offset = unit * self.slices_per_unit() as u64 + within;
        (SuperblockId(parts.block as u64), offset)
    }

    /// The superblock reserved for a zone. Zones bind one-to-one to normal
    /// superblocks, placed after the SLC region.
    #[inline]
    pub fn zone_superblock(&self, zone: ZoneId) -> SuperblockId {
        SuperblockId(self.slc_blocks_per_chip as u64 + zone.raw())
    }

    /// Number of zones the normal region provides.
    #[inline]
    pub fn zone_count(&self) -> usize {
        self.normal_superblocks()
    }

    /// Logical page at byte offset zero of a zone of `zone_size_slices`
    /// logical slices.
    #[inline]
    pub fn zone_start_lpn(&self, zone: ZoneId, zone_size_slices: u64) -> Lpn {
        Lpn(zone.raw() * zone_size_slices)
    }
}

/// Decoded components of a [`Ppa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PpaParts {
    /// Chip holding the slice.
    pub chip: ChipId,
    /// Block index within the chip.
    pub block: usize,
    /// Flash page index within the block.
    pub page: usize,
    /// 4 KiB slice index within the flash page.
    pub slice: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Geometry::consumer_1p5gb().validate().unwrap();
        Geometry::tiny().validate().unwrap();
    }

    #[test]
    fn consumer_preset_matches_paper() {
        let g = Geometry::consumer_1p5gb();
        assert_eq!(g.nchips(), 4);
        assert_eq!(g.superpage_bytes(), 384 * 1024);
        assert_eq!(g.program_unit_bytes, 96 * 1024);
        // ~1.5 GB of normal capacity.
        let normal = g.superblock_bytes() * g.normal_superblocks() as u64;
        assert!(normal > 1_400_000_000 && normal < 1_600_000_000, "{normal}");
    }

    #[test]
    fn ppa_roundtrip_exhaustive_tiny() {
        let g = Geometry::tiny();
        for chip in 0..g.nchips() as u64 {
            for block in [0usize, 1, g.blocks_per_chip - 1] {
                for page in [0usize, 1, g.pages_per_block - 1] {
                    for slice in 0..g.slices_per_page() {
                        let ppa = g.encode_ppa(ChipId(chip), block, page, slice);
                        let parts = g.decode_ppa(ppa);
                        assert_eq!(parts.chip, ChipId(chip));
                        assert_eq!(parts.block, block);
                        assert_eq!(parts.page, page);
                        assert_eq!(parts.slice, slice);
                    }
                }
            }
        }
    }

    #[test]
    fn superblock_slice_roundtrip() {
        let g = Geometry::tiny();
        let sb = SuperblockId(5);
        for offset in 0..g.slices_per_superblock() {
            let ppa = g.superblock_slice(sb, offset);
            assert_eq!(g.superblock_offset_of(ppa), (sb, offset));
        }
    }

    #[test]
    fn superblock_slices_are_unique_and_stripe_chips() {
        let g = Geometry::tiny();
        let sb = SuperblockId(4);
        let mut seen = std::collections::HashSet::new();
        for offset in 0..g.slices_per_superblock() {
            let ppa = g.superblock_slice(sb, offset);
            assert!(seen.insert(ppa), "duplicate ppa for offset {offset}");
            assert_eq!(g.decode_ppa(ppa).block, 4);
        }
        // Consecutive programming units land on consecutive chips.
        let spu = g.slices_per_unit() as u64;
        let c0 = g.decode_ppa(g.superblock_slice(sb, 0)).chip;
        let c1 = g.decode_ppa(g.superblock_slice(sb, spu)).chip;
        assert_ne!(c0, c1);
    }

    #[test]
    fn slc_region_detection() {
        let g = Geometry::tiny();
        let slc = g.superblock_slice(SuperblockId(0), 0);
        let normal = g.superblock_slice(SuperblockId(g.slc_blocks_per_chip as u64), 0);
        assert!(g.is_slc(slc));
        assert!(!g.is_slc(normal));
    }

    #[test]
    fn zone_binding() {
        let g = Geometry::tiny();
        assert_eq!(g.zone_superblock(ZoneId(0)), SuperblockId(4));
        assert_eq!(g.zone_count(), 16);
        assert_eq!(g.zone_start_lpn(ZoneId(2), 256), Lpn(512));
    }

    #[test]
    fn invalid_geometries_rejected() {
        let mut g = Geometry::tiny();
        g.program_unit_bytes = 100; // not page aligned
        assert!(g.validate().is_err());

        let mut g = Geometry::tiny();
        g.slc_blocks_per_chip = g.blocks_per_chip;
        assert!(g.validate().is_err());

        let mut g = Geometry::tiny();
        g.channels = 0;
        assert!(g.validate().is_err());

        let mut g = Geometry::tiny();
        g.pages_per_block = 17; // not a whole number of 4-page units
        assert!(g.validate().is_err());
    }

    #[test]
    fn plane_mapping() {
        let mut g = Geometry::tiny();
        g.planes_per_chip = 2;
        g.validate().unwrap();
        assert_eq!(g.nplanes(), 8);
        assert_eq!(g.plane_of(ChipId(0), 0), 0);
        assert_eq!(g.plane_of(ChipId(0), 1), 1);
        assert_eq!(g.plane_of(ChipId(0), 2), 0);
        assert_eq!(g.plane_of(ChipId(3), 5), 7);
        g.planes_per_chip = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn channel_striping() {
        let g = Geometry::tiny();
        assert_eq!(g.channel_of(ChipId(0)), ChannelId(0));
        assert_eq!(g.channel_of(ChipId(1)), ChannelId(1));
        assert_eq!(g.channel_of(ChipId(2)), ChannelId(0));
        assert_eq!(g.channel_of(ChipId(3)), ChannelId(1));
    }
}
