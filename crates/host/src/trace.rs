//! Trace-driven workloads: parse, synthesise and replay I/O traces.
//!
//! The text format is one operation per line, blkparse-style:
//!
//! ```text
//! # time_ns  op  offset_bytes  length_bytes
//! 0          W   0             131072
//! 250000     R   65536         4096
//! 1000000    D   0             16777216      # zone reset (discard)
//! ```
//!
//! Comments (`#`) and blank lines are ignored. Replay issues each
//! operation no earlier than its timestamp (open-loop), or back to back
//! (closed-loop) when `respect_timestamps` is off.

use conzone_sim::{LatencyHistogram, SimRng};
use conzone_types::{Counters, IoRequest, SimDuration, SimTime, ZonedDevice, SLICE_BYTES};

use crate::runner::{HostError, JobReport};

/// One trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Issue time relative to trace start.
    pub at: SimTime,
    /// What to do.
    pub kind: TraceKind,
    /// Byte offset.
    pub offset: u64,
    /// Byte length.
    pub len: u64,
}

/// Operation kind in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Host read.
    Read,
    /// Host write.
    Write,
    /// Discard: reset the zone containing `offset` (zoned devices only).
    Discard,
}

/// A parsed or generated trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

/// Error from parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an operation (kept in insertion order).
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// The operations in order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total bytes moved by reads and writes.
    pub fn total_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind != TraceKind::Discard)
            .map(|o| o.len)
            .sum()
    }

    /// Parses the text format described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] naming the first malformed line.
    pub fn parse(text: &str) -> Result<Trace, ParseTraceError> {
        let mut trace = Trace::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let fields: Vec<&str> = body.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(ParseTraceError {
                    line,
                    message: format!("expected 4 fields, found {}", fields.len()),
                });
            }
            let at = fields[0].parse::<u64>().map_err(|e| ParseTraceError {
                line,
                message: format!("bad timestamp: {e}"),
            })?;
            let kind = match fields[1] {
                "R" | "r" => TraceKind::Read,
                "W" | "w" => TraceKind::Write,
                "D" | "d" => TraceKind::Discard,
                other => {
                    return Err(ParseTraceError {
                        line,
                        message: format!("unknown op '{other}' (expected R, W or D)"),
                    })
                }
            };
            let offset = fields[2].parse::<u64>().map_err(|e| ParseTraceError {
                line,
                message: format!("bad offset: {e}"),
            })?;
            let len = fields[3].parse::<u64>().map_err(|e| ParseTraceError {
                line,
                message: format!("bad length: {e}"),
            })?;
            trace.push(TraceOp {
                at: SimTime::from_nanos(at),
                kind,
                offset,
                len,
            });
        }
        Ok(trace)
    }

    /// Serialises back to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# time_ns op offset_bytes length_bytes\n");
        for op in &self.ops {
            let k = match op.kind {
                TraceKind::Read => 'R',
                TraceKind::Write => 'W',
                TraceKind::Discard => 'D',
            };
            out.push_str(&format!(
                "{} {} {} {}\n",
                op.at.as_nanos(),
                k,
                op.offset,
                op.len
            ));
        }
        out
    }
}

/// Builder for a synthetic mobile-like trace: bursts of sequential media
/// writes, a stream of small synchronous metadata writes, and zipf-skewed
/// random reads — the consumer access pattern the paper targets.
#[derive(Debug, Clone)]
pub struct MobileTraceBuilder {
    zone_bytes: u64,
    zones: u64,
    seed: u64,
    bursts: u64,
    burst_bytes: u64,
    metadata_every: u64,
    reads: u64,
    // xtask-lint: allow(float-determinism) — Zipf skew knob; sampling is seeded and quantized
    read_skew: f64,
}

impl MobileTraceBuilder {
    /// Targets a zoned device of `zones` zones of `zone_bytes` each.
    pub fn new(zone_bytes: u64, zones: u64) -> MobileTraceBuilder {
        MobileTraceBuilder {
            zone_bytes,
            zones,
            seed: 0xb11e_7ace,
            bursts: 4,
            burst_bytes: 8 * 1024 * 1024,
            metadata_every: 2 * 1024 * 1024,
            reads: 2000,
            read_skew: 1.1,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of media write bursts (e.g. photos).
    pub fn bursts(mut self, n: u64) -> Self {
        self.bursts = n;
        self
    }

    /// Bytes per burst.
    pub fn burst_bytes(mut self, bytes: u64) -> Self {
        self.burst_bytes = bytes;
        self
    }

    /// Number of 4 KiB random reads appended after the writes.
    pub fn reads(mut self, n: u64) -> Self {
        self.reads = n;
        self
    }

    /// Zipf skew of the reads (0.0 = uniform, ~1.0 = typical hot/cold).
    // xtask-lint: allow(float-determinism) — Zipf skew knob; sampling is seeded and quantized
    pub fn read_skew(mut self, skew: f64) -> Self {
        self.read_skew = skew;
        self
    }

    /// Builds the trace. Writes are strictly sequential per zone (media in
    /// even zones, metadata in zone 1); reads are zipf-skewed over the
    /// written media region.
    pub fn build(self) -> Trace {
        let mut rng = SimRng::new(self.seed);
        let mut trace = Trace::new();
        let chunk = 512 * 1024u64;
        let mut t = 0u64;
        let mut media_zone = 0u64;
        let mut media_off = 0u64;
        let mut meta_off = 0u64;
        let mut written_media: Vec<(u64, u64)> = Vec::new(); // (offset, len)

        let mut used_zones: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        used_zones.insert(0);
        for _ in 0..self.bursts {
            let mut streamed = 0;
            while streamed < self.burst_bytes {
                if media_off == self.zone_bytes {
                    media_zone = (media_zone + 2) % (self.zones & !1).max(2);
                    if !used_zones.insert(media_zone) {
                        // Revisiting a zone: the host discards it first and
                        // its old extents disappear from the read footprint.
                        trace.push(TraceOp {
                            at: SimTime::from_nanos(t),
                            kind: TraceKind::Discard,
                            offset: media_zone * self.zone_bytes,
                            len: self.zone_bytes,
                        });
                        let lo = media_zone * self.zone_bytes;
                        let hi = lo + self.zone_bytes;
                        written_media.retain(|(off, _)| *off < lo || *off >= hi);
                    }
                    media_off = 0;
                }
                let offset = media_zone * self.zone_bytes + media_off;
                trace.push(TraceOp {
                    at: SimTime::from_nanos(t),
                    kind: TraceKind::Write,
                    offset,
                    len: chunk,
                });
                written_media.push((offset, chunk));
                media_off += chunk;
                streamed += chunk;
                t += 200_000; // 200 us between submissions
                if streamed % self.metadata_every == 0 {
                    trace.push(TraceOp {
                        at: SimTime::from_nanos(t),
                        kind: TraceKind::Write,
                        offset: self.zone_bytes + meta_off,
                        len: 16 * 1024,
                    });
                    meta_off += 16 * 1024;
                    t += 100_000;
                }
            }
            t += 5_000_000; // 5 ms between bursts
        }

        // Zipf-ish skewed reads over written media extents: rank sampled
        // with probability ∝ rank^-skew via inversion on a harmonic CDF.
        let n = written_media.len().max(1);
        let weights: Vec<f64> = (1..=n)
            .map(|r| 1.0 / (r as f64).powf(self.read_skew))
            .collect();
        let total: f64 = weights.iter().sum();
        for _ in 0..self.reads {
            let mut x = rng.f64() * total;
            let mut rank = 0;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    rank = i;
                    break;
                }
                x -= w;
            }
            let (base, len) = written_media[rank % written_media.len()];
            let slice = rng.below(len / SLICE_BYTES) * SLICE_BYTES;
            trace.push(TraceOp {
                at: SimTime::from_nanos(t),
                kind: TraceKind::Read,
                offset: base + slice,
                len: SLICE_BYTES,
            });
            t += 50_000;
        }
        trace
    }
}

/// Replays a trace against a zoned device, honouring timestamps as
/// earliest-issue times (`open_loop`) or issuing back to back.
///
/// # Errors
///
/// Propagates device errors with the offending offset.
pub fn replay_trace<D: ZonedDevice + ?Sized>(
    dev: &mut D,
    trace: &Trace,
    start: SimTime,
    open_loop: bool,
) -> Result<JobReport, HostError> {
    let before = dev.counters();
    let mut hist = LatencyHistogram::new();
    let mut read_hist = LatencyHistogram::new();
    let mut write_hist = LatencyHistogram::new();
    let mut t = start;
    let mut bytes = 0u64;
    let mut ops = 0u64;
    let mut finished = start;
    for op in trace.ops() {
        let issue = if open_loop {
            t.max(start + (op.at - SimTime::ZERO))
        } else {
            t
        };
        let completion = match op.kind {
            TraceKind::Read => dev.submit(issue, &IoRequest::read(op.offset, op.len)),
            TraceKind::Write => dev.submit(issue, &IoRequest::write(op.offset, op.len)),
            TraceKind::Discard => {
                let zone = dev.zone_of(op.offset);
                dev.reset_zone(issue, zone)
            }
        }
        .map_err(|source| HostError::Device {
            offset: op.offset,
            source,
        })?;
        hist.record(completion.latency());
        match op.kind {
            TraceKind::Read => read_hist.record(completion.latency()),
            TraceKind::Write => write_hist.record(completion.latency()),
            TraceKind::Discard => {}
        }
        if op.kind != TraceKind::Discard {
            bytes += op.len;
        }
        ops += 1;
        finished = finished.max(completion.finished);
        t = completion.finished;
    }
    let after = dev.counters();
    Ok(JobReport {
        model: dev.model_name(),
        started: start,
        finished,
        bytes,
        ops,
        read_latency: read_hist.summary(),
        write_latency: write_hist.summary(),
        // Replay is a single issuing stream.
        thread_latency: vec![hist.summary()],
        metrics: Vec::new(),
        latency: hist.summary(),
        counters: after.since(&before),
    })
}

/// Convenience: the counter delta a replay produced.
pub fn replay_counters(report: &JobReport) -> &Counters {
    &report.counters
}

/// Upper bound on how long a closed-loop replay of `trace` can take,
/// assuming every op costs at most `per_op`: a sanity budget for tests.
pub fn replay_budget(trace: &Trace, per_op: SimDuration) -> SimDuration {
    per_op * trace.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use conzone_core::ConZone;
    use conzone_types::DeviceConfig;

    #[test]
    fn parse_roundtrip() {
        let text = "\
# a comment
0 W 0 131072
250000 R 65536 4096   # inline comment

1000000 D 0 16777216
";
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.ops()[0].kind, TraceKind::Write);
        assert_eq!(trace.ops()[1].at, SimTime::from_nanos(250_000));
        assert_eq!(trace.ops()[2].kind, TraceKind::Discard);
        assert_eq!(trace.total_bytes(), 131072 + 4096);

        let reparsed = Trace::parse(&trace.to_text()).unwrap();
        assert_eq!(reparsed.ops(), trace.ops());
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = Trace::parse("0 W 0\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = Trace::parse("0 X 0 4096\n").unwrap_err();
        assert!(err.message.contains("unknown op"));
        let err = Trace::parse("zero W 0 4096\n").unwrap_err();
        assert!(err.message.contains("timestamp"));
    }

    #[test]
    fn mobile_trace_replays_on_conzone() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let trace = MobileTraceBuilder::new(dev.zone_size(), dev.zone_count() as u64)
            .bursts(2)
            .burst_bytes(1024 * 1024)
            .reads(200)
            .build();
        assert!(!trace.is_empty());
        let report = replay_trace(&mut dev, &trace, SimTime::ZERO, false).unwrap();
        assert_eq!(report.ops, trace.len() as u64);
        assert!(report.bandwidth_mibs() > 0.0);
        assert!(report.counters.host_read_ops >= 200);
    }

    #[test]
    fn open_loop_respects_timestamps() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let mut trace = Trace::new();
        trace.push(TraceOp {
            at: SimTime::ZERO,
            kind: TraceKind::Write,
            offset: 0,
            len: 4096,
        });
        trace.push(TraceOp {
            at: SimTime::from_nanos(50_000_000), // 50 ms idle gap
            kind: TraceKind::Write,
            offset: 4096,
            len: 4096,
        });
        let r = replay_trace(&mut dev, &trace, SimTime::ZERO, true).unwrap();
        assert!(r.finished >= SimTime::from_nanos(50_000_000));
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let r = replay_trace(&mut dev, &trace, SimTime::ZERO, false).unwrap();
        assert!(
            r.finished < SimTime::from_nanos(50_000_000),
            "closed loop ignores gaps"
        );
    }

    #[test]
    fn budget_helper() {
        let trace = Trace::parse("0 W 0 4096\n1 W 4096 4096\n").unwrap();
        assert_eq!(
            replay_budget(&trace, SimDuration::from_micros(100)),
            SimDuration::from_micros(200)
        );
    }
}
