//! Canned consumer-device workloads, as replayable traces.
//!
//! The paper targets "research on consumer-grade zoned flash storage with
//! diverse I/O characteristics" (§I contribution 1). These presets encode
//! the access patterns the mobile-storage literature keeps measuring, so
//! a design change can be evaluated against a whole day-in-the-life in
//! one command (`conzone gen-trace --preset ...`).

use conzone_sim::SimRng;
use conzone_types::{SimTime, SLICE_BYTES};

use crate::trace::{Trace, TraceKind, TraceOp};

/// The available workload presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPreset {
    /// Cold boot: a storm of small scattered reads (libraries, dex files,
    /// configuration) with a handful of log writes.
    Boot,
    /// App installation: large sequential package write, then extraction —
    /// interleaved reads of the package and writes of many small files.
    AppInstall,
    /// Camera burst: large sequential media writes racing small
    /// synchronous metadata commits (the §II-B conflict pattern).
    CameraBurst,
    /// Social-media scrolling: zipf-skewed small reads with a trickle of
    /// cache writes.
    SocialScroll,
}

impl WorkloadPreset {
    /// All presets.
    pub const ALL: [WorkloadPreset; 4] = [
        WorkloadPreset::Boot,
        WorkloadPreset::AppInstall,
        WorkloadPreset::CameraBurst,
        WorkloadPreset::SocialScroll,
    ];

    /// Preset name as used on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadPreset::Boot => "boot",
            WorkloadPreset::AppInstall => "app-install",
            WorkloadPreset::CameraBurst => "camera-burst",
            WorkloadPreset::SocialScroll => "social-scroll",
        }
    }

    /// Parses a CLI preset name.
    pub fn from_name(name: &str) -> Option<WorkloadPreset> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Builds the preset's trace for a zoned device of `zones` zones of
    /// `zone_bytes`. Writes are sequential per zone; reads target written
    /// extents only, so the trace replays cleanly on a fresh device.
    pub fn build(self, zone_bytes: u64, zones: u64, seed: u64) -> Trace {
        let mut b = PresetBuilder::new(zone_bytes, zones, seed);
        match self {
            WorkloadPreset::Boot => {
                // Pre-existing system image in zones 0..4.
                b.fill_zone(0);
                b.fill_zone(2);
                b.fill_zone(4);
                // 6000 scattered 4-16 KiB reads, occasionally a log write.
                for i in 0..6000 {
                    let slices = 1 + b.rng.below(4);
                    b.rand_read(slices);
                    if i % 50 == 0 {
                        b.log_write(1, 16 * 1024);
                    }
                    b.advance(40_000);
                }
            }
            WorkloadPreset::AppInstall => {
                // 96 MiB package download, sequential.
                b.stream_write(0, 96 << 20, 512 * 1024);
                b.advance(10_000_000);
                // Extraction: read package, write many small files.
                for _ in 0..1500 {
                    b.rand_read(8);
                    b.log_write(3, 32 * 1024);
                    b.advance(100_000);
                }
            }
            WorkloadPreset::CameraBurst => {
                // Metadata lives on the last even zone: same buffer parity
                // as the media zones, so every commit contends (§II-B).
                let meta_zone = b.zones - 2;
                for _photo in 0..16 {
                    b.stream_write_continue(0, 8 << 20, 512 * 1024, 2 << 20, meta_zone);
                    b.advance(3_000_000);
                }
            }
            WorkloadPreset::SocialScroll => {
                b.fill_zone(0);
                b.fill_zone(2);
                for i in 0..8000 {
                    b.zipf_read();
                    if i % 25 == 0 {
                        b.log_write(1, 48 * 1024); // media cache append
                    }
                    b.advance(25_000);
                }
            }
        }
        b.trace
    }
}

/// Shared machinery for the presets.
struct PresetBuilder {
    trace: Trace,
    rng: SimRng,
    zone_bytes: u64,
    zones: u64,
    t: u64,
    /// Sequential cursor per zone.
    wp: Vec<u64>,
    /// Extents available for reads: (offset, len).
    readable: Vec<(u64, u64)>,
}

impl PresetBuilder {
    fn new(zone_bytes: u64, zones: u64, seed: u64) -> PresetBuilder {
        PresetBuilder {
            trace: Trace::new(),
            rng: SimRng::new(seed),
            zone_bytes,
            zones,
            t: 0,
            wp: vec![0; zones as usize],
            readable: Vec::new(),
        }
    }

    fn advance(&mut self, ns: u64) {
        self.t += ns;
    }

    fn push(&mut self, kind: TraceKind, offset: u64, len: u64) {
        self.trace.push(TraceOp {
            at: SimTime::from_nanos(self.t),
            kind,
            offset,
            len,
        });
    }

    /// Appends `len` bytes to `zone`'s cursor in `chunk`-sized writes.
    fn stream_write(&mut self, zone: u64, len: u64, chunk: u64) {
        self.stream_write_continue(zone, len, chunk, u64::MAX, 0);
    }

    /// Like [`stream_write`], but interleaves a small metadata write into
    /// `meta_zone` every `meta_every` bytes (0 disables).
    fn stream_write_continue(
        &mut self,
        mut zone: u64,
        len: u64,
        chunk: u64,
        meta_every: u64,
        meta_zone: u64,
    ) {
        let mut streamed = 0;
        while streamed < len {
            if self.wp[zone as usize] + chunk > self.zone_bytes {
                // Move to the next zone of the same parity.
                zone = (zone + 2) % self.zones;
                if self.wp[zone as usize] + chunk > self.zone_bytes {
                    self.push(TraceKind::Discard, zone * self.zone_bytes, self.zone_bytes);
                    let zb = self.zone_bytes;
                    self.readable.retain(|(off, _)| off / zb != zone);
                    self.wp[zone as usize] = 0;
                }
            }
            let offset = zone * self.zone_bytes + self.wp[zone as usize];
            self.push(TraceKind::Write, offset, chunk);
            self.readable.push((offset, chunk));
            self.wp[zone as usize] += chunk;
            streamed += chunk;
            self.t += 150_000;
            if meta_every != u64::MAX && streamed % meta_every == 0 {
                self.log_write(meta_zone, 16 * 1024);
            }
        }
    }

    /// Fills a whole zone (pre-existing data for read-heavy presets).
    fn fill_zone(&mut self, zone: u64) {
        let len = self.zone_bytes - self.wp[zone as usize];
        self.stream_write_at_zone(zone, len);
    }

    fn stream_write_at_zone(&mut self, zone: u64, len: u64) {
        let mut streamed = 0;
        while streamed < len {
            let chunk = (512 * 1024).min(len - streamed);
            let offset = zone * self.zone_bytes + self.wp[zone as usize];
            self.push(TraceKind::Write, offset, chunk);
            self.readable.push((offset, chunk));
            self.wp[zone as usize] += chunk;
            streamed += chunk;
            self.t += 150_000;
        }
    }

    /// Appends a small write to a dedicated log zone.
    fn log_write(&mut self, zone: u64, len: u64) {
        if self.wp[zone as usize] + len > self.zone_bytes {
            self.push(TraceKind::Discard, zone * self.zone_bytes, self.zone_bytes);
            let zb = self.zone_bytes;
            self.readable.retain(|(off, _)| off / zb != zone);
            self.wp[zone as usize] = 0;
        }
        let offset = zone * self.zone_bytes + self.wp[zone as usize];
        self.push(TraceKind::Write, offset, len);
        self.wp[zone as usize] += len;
        self.t += 80_000;
    }

    /// A uniform random 4 KiB-aligned read from the readable extents.
    fn rand_read(&mut self, slices: u64) {
        if self.readable.is_empty() {
            return;
        }
        let (base, len) = self.readable[self.rng.below(self.readable.len() as u64) as usize];
        let max_slices = (len / SLICE_BYTES).max(1);
        let n = slices.min(max_slices);
        let start = self.rng.below(max_slices - n + 1);
        self.push(TraceKind::Read, base + start * SLICE_BYTES, n * SLICE_BYTES);
    }

    /// A zipf-skewed 4 KiB read (hot head of the readable list).
    fn zipf_read(&mut self) {
        if self.readable.is_empty() {
            return;
        }
        let u = self.rng.f64();
        let idx = ((u * u * u) * self.readable.len() as f64) as usize;
        let (base, len) = self.readable[idx.min(self.readable.len() - 1)];
        let slice = self.rng.below((len / SLICE_BYTES).max(1));
        self.push(TraceKind::Read, base + slice * SLICE_BYTES, SLICE_BYTES);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::replay_trace;
    use conzone_core::ConZone;
    use conzone_types::{DeviceConfig, Geometry, ZonedDevice};

    fn dev() -> ConZone {
        let mut g = Geometry::consumer_1p5gb();
        g.blocks_per_chip = 40; // 32 zones
        ConZone::new(DeviceConfig::builder(g).build().unwrap())
    }

    #[test]
    fn names_roundtrip() {
        for p in WorkloadPreset::ALL {
            assert_eq!(WorkloadPreset::from_name(p.name()), Some(p));
        }
        assert_eq!(WorkloadPreset::from_name("bogus"), None);
    }

    #[test]
    fn every_preset_replays_cleanly() {
        for preset in WorkloadPreset::ALL {
            let mut d = dev();
            let trace = preset.build(d.zone_size(), d.zone_count() as u64, 7);
            assert!(!trace.is_empty(), "{}", preset.name());
            let report = replay_trace(&mut d, &trace, SimTime::ZERO, false)
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
            assert_eq!(report.ops, trace.len() as u64, "{}", preset.name());
        }
    }

    #[test]
    fn presets_have_distinct_shapes() {
        let d = dev();
        let zb = d.zone_size();
        let zc = d.zone_count() as u64;
        let count_reads = |t: &Trace| {
            t.ops().iter().filter(|o| o.kind == TraceKind::Read).count() as f64 / t.len() as f64
        };
        let boot = WorkloadPreset::Boot.build(zb, zc, 7);
        let install = WorkloadPreset::AppInstall.build(zb, zc, 7);
        let burst = WorkloadPreset::CameraBurst.build(zb, zc, 7);
        assert!(count_reads(&boot) > 0.8, "boot is read-dominated");
        assert!(count_reads(&burst) < 0.1, "bursts are write-dominated");
        assert!(
            count_reads(&install) > count_reads(&burst),
            "install mixes more reads than bursts"
        );
    }

    #[test]
    fn camera_burst_provokes_conflicts() {
        let mut d = dev();
        let trace = WorkloadPreset::CameraBurst.build(d.zone_size(), d.zone_count() as u64, 7);
        let report = replay_trace(&mut d, &trace, SimTime::ZERO, false).unwrap();
        assert!(
            report.counters.buffer_conflicts > 0,
            "metadata commits conflict with media: {:?}",
            report.counters
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = dev();
        let a = WorkloadPreset::SocialScroll.build(d.zone_size(), d.zone_count() as u64, 9);
        let b = WorkloadPreset::SocialScroll.build(d.zone_size(), d.zone_count() as u64, 9);
        assert_eq!(a.ops(), b.ops());
        let c = WorkloadPreset::SocialScroll.build(d.zone_size(), d.zone_count() as u64, 10);
        assert_ne!(a.ops(), c.ops());
    }
}
