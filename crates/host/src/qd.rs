//! NVMe-like queue-pair job driver: queue depth > 1, per-queue
//! arbitration, and multi-tenant interference.
//!
//! The synchronous runner ([`crate::run_job`]) models each thread as a
//! blocking fio job. This module models the host the way an NVMe driver
//! sees it: every *tenant* (an independent workload sharing the device)
//! owns a [`QueuePair`] — a submission queue, a completion queue, and a
//! bounded pool of in-flight command slots — and a single controller-side
//! command-fetch stage ([`conzone_core::QueueFrontEnd`]) arbitrates among
//! the submission queues before commands reach the device model.
//!
//! Everything advances on the simulated clock of the existing
//! discrete-event core — there is no OS async runtime. The driver keeps
//! up to `queue_depth` commands outstanding per tenant thread, and the
//! command-fetch [`Resource`](conzone_sim::Resource) serialises dispatch,
//! so per-tenant throughput under contention is decided by the
//! [`Arbiter`](conzone_core::Arbiter) policy rather than scripted.
//!
//! Two guarantees anchor the model to the synchronous runner:
//!
//! * **Degenerate equivalence** — one tenant at queue depth 1 with a zero
//!   fetch cost generates, dispatches and completes commands in exactly
//!   the synchronous runner's order, so counters, histograms and the
//!   device trace are bit-identical on the same seed (no queue events are
//!   emitted in this configuration, by design).
//! * **Conservation** — per-tenant [`Counters`] are snapshot-diffed
//!   around each dispatch, so they always sum to the device-wide delta
//!   ([`MultiReport::tenants_sum_consistent`]).

use std::collections::VecDeque;
use std::sync::Arc;

use conzone_core::{ArbiterKind, QueueFrontEnd};
use conzone_sim::{EventQueue, LatencyHistogram, LatencySummary};
use conzone_types::{
    Counters, DeviceEvent, IoRequest, Probe, SimDuration, SimTime, SpanKind, SpanRecord, SpanSink,
    StorageDevice,
};

use crate::job::FioJob;
use crate::runner::{next_offset, plan_job, HostError, JobPlan, JobReport};
use crate::verify::payload_for;

/// One in-flight command slot of a [`QueuePair`].
#[derive(Debug, Clone, Copy)]
struct IoSlot {
    offset: u64,
    is_read: bool,
    thread: usize,
    /// When the host pushed the command into the submission queue.
    arrival: SimTime,
    /// When the fetch stage granted the command (reaches the device then).
    granted: SimTime,
}

/// An NVMe-like queue pair: submission queue, completion queue, and a
/// fixed slab of command slots sized `threads × depth`.
///
/// Slots are reused through a free list — after construction the pair
/// performs no allocation on the submit/dispatch/reap path. Completion
/// reaping is modelled with zero host delay: the driver pushes a
/// completed command into the CQ and reaps it at the same simulated
/// instant, so CQ occupancy never exceeds one.
#[derive(Debug)]
pub struct QueuePair {
    sq: VecDeque<u32>,
    cq: VecDeque<u32>,
    depth: usize,
    slots: Vec<IoSlot>,
    free: Vec<u32>,
    inflight: u32,
}

impl QueuePair {
    /// A queue pair for `threads` generator threads at `depth` outstanding
    /// commands each.
    pub fn new(threads: usize, depth: usize) -> QueuePair {
        // Slot indices live in u32 (half the slab footprint of usize);
        // clamp the slot count into that index space up front so every
        // later index conversion is widening.
        let n32 = u32::try_from(threads.max(1) * depth.max(1)).unwrap_or(u32::MAX);
        let n = n32 as usize;
        QueuePair {
            sq: VecDeque::with_capacity(n),
            cq: VecDeque::with_capacity(n),
            depth,
            slots: vec![
                IoSlot {
                    offset: 0,
                    is_read: false,
                    thread: 0,
                    arrival: SimTime::ZERO,
                    granted: SimTime::ZERO,
                };
                n
            ],
            free: (0..n32).rev().collect(),
            inflight: 0,
        }
    }

    /// Outstanding commands allowed per thread.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Commands waiting in the submission queue.
    pub fn pending(&self) -> usize {
        self.sq.len()
    }

    /// Commands dispatched to the device but not yet reaped.
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// Allocates a slot for a new command and appends it to the
    /// submission queue; `None` when all slots are in use.
    // xtask-effect: hot_path
    fn submit(
        &mut self,
        offset: u64,
        is_read: bool,
        thread: usize,
        arrival: SimTime,
    ) -> Option<u32> {
        let idx = self.free.pop()?;
        self.slots[idx as usize] = IoSlot {
            offset,
            is_read,
            thread,
            arrival,
            granted: arrival,
        };
        self.sq.push_back(idx);
        Some(idx)
    }

    /// Pops the submission queue's head — the command the fetch stage
    /// granted.
    // xtask-effect: hot_path
    fn fetch_next(&mut self) -> Option<u32> {
        self.sq.pop_front()
    }

    /// Marks a fetched command dispatched at `granted`.
    // xtask-effect: hot_path
    fn mark_dispatched(&mut self, slot: u32, granted: SimTime) {
        self.slots[slot as usize].granted = granted;
        self.inflight += 1;
    }

    /// Posts a completed command to the completion queue.
    // xtask-effect: hot_path
    fn post_completion(&mut self, slot: u32) {
        self.cq.push_back(slot);
    }

    /// Reaps the completion queue's head.
    // xtask-effect: hot_path
    fn reap(&mut self) -> Option<u32> {
        let idx = self.cq.pop_front()?;
        self.inflight -= 1;
        Some(idx)
    }

    /// Returns a reaped slot to the free list for reuse.
    // xtask-effect: hot_path
    fn release(&mut self, slot: u32) {
        self.free.push(slot);
    }

    fn slot(&self, slot: u32) -> IoSlot {
        self.slots[slot as usize]
    }
}

/// One tenant of a multi-tenant run: a named workload with an arbitration
/// weight, backed by its own [`QueuePair`].
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name for reports (e.g. `"reader"`).
    pub name: String,
    /// The workload. `queue_depth` sets the tenant's per-thread QD;
    /// open-loop arrivals (`arrival_iops`) are not supported here.
    pub job: FioJob,
    /// Weight under the [`ArbiterKind::Weighted`] policy (ignored by
    /// round-robin). Zero is treated as one.
    pub weight: u32,
}

impl TenantSpec {
    /// A tenant with weight 1.
    pub fn new(name: impl Into<String>, job: FioJob) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            job,
            weight: 1,
        }
    }

    /// Sets the arbitration weight.
    #[must_use]
    pub fn weight(mut self, weight: u32) -> TenantSpec {
        self.weight = weight;
        self
    }
}

/// Knobs of the queue-pair driver.
pub struct QdOptions {
    /// Time the controller's fetch engine spends per command between
    /// arbitration and the device seeing the request. Zero makes the
    /// front end transparent.
    pub fetch_cost: SimDuration,
    /// Arbitration policy among tenant submission queues.
    pub arbiter: ArbiterKind,
    /// Probe receiving the host-level queue events
    /// ([`DeviceEvent::QueueSubmit`] / `QueueArbitrate` /
    /// `QueueComplete`). Disabled by default.
    pub probe: Probe,
    /// Sink receiving one [`SpanKind::QueueCmd`] root span (with a nested
    /// [`SpanKind::QueueWait`] child) per completed command.
    pub spans: Option<Arc<dyn SpanSink + Send + Sync>>,
}

impl Default for QdOptions {
    fn default() -> QdOptions {
        QdOptions {
            fetch_cost: SimDuration::ZERO,
            arbiter: ArbiterKind::RoundRobin,
            probe: Probe::disabled(),
            spans: None,
        }
    }
}

impl core::fmt::Debug for QdOptions {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("QdOptions")
            .field("fetch_cost", &self.fetch_cost)
            .field("arbiter", &self.arbiter)
            .field("probe", &self.probe)
            .field("spans", &self.spans.is_some())
            .finish()
    }
}

/// Per-tenant slice of a [`MultiReport`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name from the spec.
    pub name: String,
    /// Arbitration weight from the spec.
    pub weight: u32,
    /// Bytes moved by this tenant.
    pub bytes: u64,
    /// Requests completed by this tenant.
    pub ops: u64,
    /// Simulated completion of the tenant's last request.
    pub finished: SimTime,
    /// Submit-to-completion latency (includes queue wait).
    pub latency: LatencySummary,
    /// Latency of the read requests only.
    pub read_latency: LatencySummary,
    /// Latency of the write requests only.
    pub write_latency: LatencySummary,
    /// Submission-queue wait: doorbell to arbitration grant.
    pub queue_wait: LatencySummary,
    /// Per-thread latency distributions, indexed by thread id.
    pub thread_latency: Vec<LatencySummary>,
    /// Device counter delta attributed to this tenant (snapshot-diffed
    /// around each of its dispatches, so background work the tenant
    /// triggered — GC, combines, mapping fetches — is charged to it).
    pub counters: Counters,
}

impl TenantReport {
    /// The tenant's throughput in thousands of IOPS over `duration`.
    pub fn kiops_over(&self, duration: SimDuration) -> f64 {
        let secs = duration.as_secs_f64();
        if secs == 0.0 {
            if self.ops > 0 {
                f64::NAN
            } else {
                0.0
            }
        } else {
            self.ops as f64 / 1000.0 / secs
        }
    }
}

/// Aggregate result of a multi-tenant queue-pair run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Device model name.
    pub model: &'static str,
    /// Arbitration policy name (`"rr"` / `"wrr"`).
    pub arbiter: &'static str,
    /// Earliest tenant start.
    pub started: SimTime,
    /// Latest completion across tenants.
    pub finished: SimTime,
    /// Total bytes moved by all tenants.
    pub bytes: u64,
    /// Total requests completed by all tenants.
    pub ops: u64,
    /// Merged latency distribution across tenants.
    pub latency: LatencySummary,
    /// Device-wide counter delta over the run.
    pub counters: Counters,
    /// Per-tenant slices, in spec order.
    pub tenants: Vec<TenantReport>,
}

impl MultiReport {
    /// Wall-clock (simulated) duration of the run.
    pub fn duration(&self) -> SimDuration {
        self.finished - self.started
    }

    /// Aggregate throughput in MiB/s (`NaN` for a zero-duration run with
    /// completed operations, matching [`JobReport`]'s convention).
    pub fn bandwidth_mibs(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs == 0.0 {
            if self.ops > 0 {
                f64::NAN
            } else {
                0.0
            }
        } else {
            self.bytes as f64 / (1024.0 * 1024.0) / secs
        }
    }

    /// Aggregate throughput in thousands of IOPS.
    pub fn kiops(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs == 0.0 {
            if self.ops > 0 {
                f64::NAN
            } else {
                0.0
            }
        } else {
            self.ops as f64 / 1000.0 / secs
        }
    }

    /// Whether the per-tenant counter deltas sum exactly to the
    /// device-wide delta — the conservation invariant of the attribution
    /// scheme. Always true for runs produced by [`run_tenants`].
    pub fn tenants_sum_consistent(&self) -> bool {
        let mut sum = Counters::default();
        for t in &self.tenants {
            sum.merge(&t.counters);
        }
        sum == self.counters
    }
}

/// Driver-internal state of one tenant.
struct TenantState {
    name: String,
    weight: u32,
    job: FioJob,
    plan: JobPlan,
    qp: QueuePair,
    hist: LatencyHistogram,
    read_hist: LatencyHistogram,
    write_hist: LatencyHistogram,
    wait_hist: LatencyHistogram,
    thread_hists: Vec<LatencyHistogram>,
    counters: Counters,
    bytes: u64,
    ops: u64,
    finished: SimTime,
    writes_since_fsync: u64,
}

/// Discrete events of the queue-pair driver.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A tenant thread's closed loop generates its next command.
    Gen { tenant: usize, thread: usize },
    /// The command-fetch stage is free: arbitrate and dispatch one
    /// command.
    Dispatch,
    /// A dispatched command's device completion posts to the CQ.
    Reap { tenant: usize, slot: u32 },
}

/// Runs `specs` concurrently against one device and reports per-tenant
/// and aggregate results.
///
/// Each tenant's threads keep `queue_depth` commands outstanding
/// (closed-loop); the shared [`QueueFrontEnd`] arbitrates dispatch.
/// Tenants see interference through the device's chip/channel/buffer
/// resources and through the serial fetch stage.
///
/// # Errors
///
/// [`HostError::BadJob`] for an empty tenant list, any job the
/// synchronous runner would reject, or an open-loop (`arrival_iops`)
/// job; [`HostError::Device`] / [`HostError::VerifyMismatch`] as in
/// [`crate::run_job`].
pub fn run_tenants<D: StorageDevice + ?Sized>(
    dev: &mut D,
    specs: &[TenantSpec],
    opts: &QdOptions,
) -> Result<MultiReport, HostError> {
    if specs.is_empty() {
        return Err(HostError::BadJob("no tenants".to_string()));
    }
    let capacity = dev.capacity_bytes();
    let mut tenants: Vec<TenantState> = Vec::with_capacity(specs.len());
    for spec in specs {
        if spec.job.arrival_iops.is_some() {
            return Err(HostError::BadJob(
                "open-loop arrivals are not supported by the queue-pair driver".to_string(),
            ));
        }
        let plan = plan_job(capacity, &spec.job)?;
        let threads = spec.job.threads;
        tenants.push(TenantState {
            name: spec.name.clone(),
            weight: spec.weight,
            job: spec.job.clone(),
            plan,
            qp: QueuePair::new(threads, spec.job.queue_depth),
            hist: LatencyHistogram::new(),
            read_hist: LatencyHistogram::new(),
            write_hist: LatencyHistogram::new(),
            wait_hist: LatencyHistogram::new(),
            thread_hists: (0..threads).map(|_| LatencyHistogram::new()).collect(),
            counters: Counters::default(),
            bytes: 0,
            ops: 0,
            finished: spec.job.start,
            writes_since_fsync: 0,
        });
    }

    // One tenant at depth 1 behind a free fetch stage is the synchronous
    // runner in different clothes: suppress queue events and spans so the
    // observable output (trace included) is bit-identical to `run_job`.
    let degenerate = tenants.len() == 1
        && tenants[0].job.queue_depth == 1
        && opts.fetch_cost == SimDuration::ZERO;
    let emit_queue = !degenerate;

    let weights: Vec<u32> = specs.iter().map(|s| s.weight).collect();
    let mut fe = QueueFrontEnd::new(specs.len(), opts.fetch_cost, opts.arbiter.build(&weights));
    let arbiter_name = fe.arbiter_name();

    let started = tenants
        .iter()
        .map(|t| t.job.start)
        .min()
        .unwrap_or(SimTime::ZERO);
    let before = dev.counters();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    for (ti, t) in tenants.iter().enumerate() {
        for th in 0..t.job.threads {
            for _ in 0..t.job.queue_depth {
                queue.push(
                    t.job.start,
                    Ev::Gen {
                        tenant: ti,
                        thread: th,
                    },
                );
            }
        }
    }

    let mut dispatch_scheduled = false;
    let mut span_id = 0u64;
    let mut io_seq = 0u64;
    let mut finished = started;

    while let Some((t, ev)) = queue.pop() {
        match ev {
            Ev::Gen { tenant, thread } => {
                let ts = &mut tenants[tenant];
                let th = &mut ts.plan.threads[thread];
                if th.issued >= th.limit {
                    continue;
                }
                let Some((offset, is_read)) = next_offset(
                    &ts.job,
                    th,
                    ts.plan.zone_bytes,
                    ts.plan.region_start,
                    ts.plan.region_len,
                ) else {
                    continue; // thread ran out of zones
                };
                th.issued += 1;
                if ts.qp.submit(offset, is_read, thread, t).is_none() {
                    // Closed loop: a Gen only fires when its slot is free.
                    continue;
                }
                let backlog = fe.doorbell(tenant);
                if emit_queue {
                    opts.probe.emit(
                        t,
                        DeviceEvent::QueueSubmit {
                            queue: tenant as u64,
                            backlog: u64::from(backlog),
                        },
                    );
                }
                if !dispatch_scheduled {
                    queue.push(t.max(fe.fetch_free_at()), Ev::Dispatch);
                    dispatch_scheduled = true;
                }
            }
            Ev::Dispatch => match fe.grant(t) {
                None => dispatch_scheduled = false,
                Some((q, dispatch_at)) => {
                    let ts = &mut tenants[q];
                    if let Some(slot_idx) = ts.qp.fetch_next() {
                        let s = ts.qp.slot(slot_idx);
                        if emit_queue {
                            opts.probe.emit(
                                dispatch_at,
                                DeviceEvent::QueueArbitrate {
                                    queue: q as u64,
                                    wait_ns: dispatch_at.saturating_since(s.arrival).as_nanos(),
                                },
                            );
                        }
                        let bs = ts.job.block_bytes;
                        let req = if s.is_read {
                            IoRequest::read(s.offset, bs)
                        } else if ts.job.verify_data {
                            IoRequest::write_data(s.offset, payload_for(ts.job.seed, s.offset, bs))
                        } else {
                            IoRequest::write(s.offset, bs)
                        };
                        let snap = dev.counters();
                        let completion =
                            dev.submit(dispatch_at, &req)
                                .map_err(|source| HostError::Device {
                                    offset: s.offset,
                                    source,
                                })?;
                        if s.is_read && ts.job.verify_data {
                            if let Some(data) = &completion.data {
                                if data != &payload_for(ts.job.seed, s.offset, bs) {
                                    return Err(HostError::VerifyMismatch { offset: s.offset });
                                }
                            }
                        }
                        let mut completed_at = completion.finished;
                        // Synchronous I/O: the write is not done until the
                        // flush is (same rule as the sync runner, per
                        // tenant).
                        if let Some(every) = ts.job.fsync_every {
                            if !s.is_read {
                                ts.writes_since_fsync += 1;
                                if ts.writes_since_fsync >= every {
                                    ts.writes_since_fsync = 0;
                                    let fc = dev.flush(completed_at).map_err(|source| {
                                        HostError::Device {
                                            offset: s.offset,
                                            source,
                                        }
                                    })?;
                                    completed_at = fc.finished;
                                }
                            }
                        }
                        let delta = dev.counters().since(&snap);
                        ts.counters.merge(&delta);
                        ts.qp.mark_dispatched(slot_idx, dispatch_at);
                        queue.push(
                            completed_at,
                            Ev::Reap {
                                tenant: q,
                                slot: slot_idx,
                            },
                        );
                    }
                    if fe.has_backlog() {
                        queue.push(fe.fetch_free_at(), Ev::Dispatch);
                    } else {
                        dispatch_scheduled = false;
                    }
                }
            },
            Ev::Reap { tenant, slot } => {
                let ts = &mut tenants[tenant];
                ts.qp.post_completion(slot);
                let Some(slot_idx) = ts.qp.reap() else {
                    continue;
                };
                let s = ts.qp.slot(slot_idx);
                let latency = t.saturating_since(s.arrival);
                ts.hist.record(latency);
                if s.is_read {
                    ts.read_hist.record(latency);
                } else {
                    ts.write_hist.record(latency);
                }
                ts.thread_hists[s.thread].record(latency);
                ts.wait_hist.record(s.granted.saturating_since(s.arrival));
                if emit_queue {
                    opts.probe.emit(
                        t,
                        DeviceEvent::QueueComplete {
                            queue: tenant as u64,
                            inflight: u64::from(ts.qp.inflight()),
                        },
                    );
                    if let Some(sink) = &opts.spans {
                        // The recorder stack cannot express overlapping
                        // commands, so build the records directly: one
                        // QueueCmd root per command with its QueueWait
                        // child, children first, parent id smaller.
                        io_seq += 1;
                        let cmd_id = span_id + 1;
                        let wait_id = span_id + 2;
                        span_id += 2;
                        sink.record(SpanRecord {
                            id: wait_id,
                            parent: cmd_id,
                            io: io_seq,
                            kind: SpanKind::QueueWait,
                            start: s.arrival,
                            end: s.granted,
                        });
                        sink.record(SpanRecord {
                            id: cmd_id,
                            parent: 0,
                            io: io_seq,
                            kind: SpanKind::QueueCmd,
                            start: s.arrival,
                            end: t,
                        });
                    }
                }
                ts.bytes += ts.job.block_bytes;
                ts.ops += 1;
                ts.finished = ts.finished.max(t);
                finished = finished.max(t);
                ts.qp.release(slot_idx);
                queue.push(
                    t,
                    Ev::Gen {
                        tenant,
                        thread: s.thread,
                    },
                );
            }
        }
    }

    let after = dev.counters();
    let mut all = LatencyHistogram::new();
    let mut bytes = 0u64;
    let mut ops = 0u64;
    let mut reports = Vec::with_capacity(tenants.len());
    for ts in &tenants {
        all.merge(&ts.hist);
        bytes += ts.bytes;
        ops += ts.ops;
        reports.push(TenantReport {
            name: ts.name.clone(),
            weight: ts.weight,
            bytes: ts.bytes,
            ops: ts.ops,
            finished: ts.finished,
            latency: ts.hist.summary(),
            read_latency: ts.read_hist.summary(),
            write_latency: ts.write_hist.summary(),
            queue_wait: ts.wait_hist.summary(),
            thread_latency: ts
                .thread_hists
                .iter()
                .map(LatencyHistogram::summary)
                .collect(),
            counters: ts.counters,
        });
    }
    Ok(MultiReport {
        model: dev.model_name(),
        arbiter: arbiter_name,
        started,
        finished,
        bytes,
        ops,
        latency: all.summary(),
        counters: after.since(&before),
        tenants: reports,
    })
}

/// Runs a single job through the queue-pair driver with default options
/// (round-robin, zero fetch cost) and reports in [`JobReport`] form.
///
/// At `queue_depth == 1` this is bit-identical to [`crate::run_job`] on
/// the same seed; at deeper queues each thread keeps `queue_depth`
/// commands outstanding.
///
/// # Errors
///
/// Same failure modes as [`run_tenants`].
pub fn run_job_qd<D: StorageDevice + ?Sized>(
    dev: &mut D,
    job: &FioJob,
) -> Result<JobReport, HostError> {
    run_job_qd_with(dev, job, &QdOptions::default())
}

/// [`run_job_qd`] with explicit driver options (fetch cost, arbitration
/// policy, queue-event probe, span sink).
///
/// # Errors
///
/// Same failure modes as [`run_tenants`].
pub fn run_job_qd_with<D: StorageDevice + ?Sized>(
    dev: &mut D,
    job: &FioJob,
    opts: &QdOptions,
) -> Result<JobReport, HostError> {
    let spec = TenantSpec::new("t0", job.clone());
    let m = run_tenants(dev, core::slice::from_ref(&spec), opts)?;
    let Some(t) = m.tenants.into_iter().next() else {
        return Err(HostError::BadJob("no tenant report".to_string()));
    };
    Ok(JobReport {
        model: m.model,
        started: m.started,
        finished: m.finished,
        bytes: t.bytes,
        ops: t.ops,
        latency: t.latency,
        read_latency: t.read_latency,
        write_latency: t.write_latency,
        thread_latency: t.thread_latency,
        metrics: Vec::new(),
        counters: m.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::AccessPattern;
    use crate::runner::run_job;
    use conzone_core::ConZone;
    use conzone_sim::{RingBufferSink, SpanBuffer};
    use conzone_types::{CountingSink, DeviceConfig};

    const MIB: u64 = 1024 * 1024;

    fn fill_job() -> FioJob {
        FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
            .zone_bytes(MIB)
            .region(0, 4 * MIB)
            .bytes_per_thread(4 * MIB)
    }

    fn assert_reports_identical(a: &JobReport, b: &JobReport) {
        assert_eq!(a.model, b.model);
        assert_eq!(a.started, b.started);
        assert_eq!(a.finished, b.finished);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.read_latency, b.read_latency);
        assert_eq!(a.write_latency, b.write_latency);
        assert_eq!(a.thread_latency, b.thread_latency);
        assert_eq!(a.counters, b.counters);
    }

    /// The qd=1 single-tenant equivalence guard: the queue-pair driver is
    /// the synchronous runner in different clothes, field for field.
    #[test]
    fn qd1_report_identical_to_sync_runner() {
        // Zoned sequential writes on ConZone, single- and multi-thread
        // (the two-thread job gets two 1 MiB zones per thread).
        let zoned_jobs = [
            fill_job(),
            fill_job()
                .threads(2)
                .bytes_per_thread(2 * MIB)
                .fsync_every(4),
        ];
        for job in zoned_jobs {
            let mut sync_dev = ConZone::new(DeviceConfig::tiny_for_tests());
            let mut qd_dev = ConZone::new(DeviceConfig::tiny_for_tests());
            let a = run_job(&mut sync_dev, &job).unwrap();
            let b = run_job_qd(&mut qd_dev, &job).unwrap();
            assert_reports_identical(&a, &b);
        }
        // Reads after a fill on ConZone.
        let mut sync_dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let mut qd_dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let f1 = run_job(&mut sync_dev, &fill_job()).unwrap();
        let f2 = run_job_qd(&mut qd_dev, &fill_job()).unwrap();
        assert_reports_identical(&f1, &f2);
        let reads = FioJob::new(AccessPattern::RandRead, 4096)
            .region(0, 4 * MIB)
            .ops_per_thread(300)
            .bytes_per_thread(u64::MAX)
            .threads(2)
            .start_at(f1.finished);
        let a = run_job(&mut sync_dev, &reads).unwrap();
        let b = run_job_qd(&mut qd_dev, &reads).unwrap();
        assert_reports_identical(&a, &b);
        // Mixed read/write on the legacy model (random writes need a
        // device without strict zone ordering).
        let mut sync_dev = conzone_legacy::LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let mut qd_dev = conzone_legacy::LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let fill = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
            .region(0, 2 * MIB)
            .bytes_per_thread(2 * MIB);
        let f1 = run_job(&mut sync_dev, &fill).unwrap();
        let f2 = run_job_qd(&mut qd_dev, &fill).unwrap();
        assert_reports_identical(&f1, &f2);
        let mixed = FioJob::new(AccessPattern::Mixed { read_percent: 60 }, 4096)
            .region(0, 2 * MIB)
            .ops_per_thread(300)
            .bytes_per_thread(u64::MAX)
            .threads(2)
            .start_at(f1.finished);
        let a = run_job(&mut sync_dev, &mixed).unwrap();
        let b = run_job_qd(&mut qd_dev, &mixed).unwrap();
        assert_reports_identical(&a, &b);
    }

    /// Same guard at the trace level: with a ring sink attached to the
    /// device, the two drivers produce byte-identical event streams (the
    /// degenerate configuration emits no queue events).
    #[test]
    fn qd1_trace_identical_to_sync_runner() {
        let job = fill_job().threads(2);
        let run = |qd: bool| {
            let sink = Arc::new(RingBufferSink::with_capacity(1 << 14));
            let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
            dev.set_probe(Probe::attached(sink.clone()));
            if qd {
                run_job_qd(&mut dev, &job).unwrap();
            } else {
                run_job(&mut dev, &job).unwrap();
            }
            sink.drain()
        };
        let sync_trace = run(false);
        let qd_trace = run(true);
        assert!(!sync_trace.is_empty());
        assert_eq!(sync_trace, qd_trace);
    }

    /// QD sweep: deeper queues expose device parallelism until the chips
    /// saturate.
    #[test]
    fn deeper_queues_raise_throughput_until_saturation() {
        let run_qd = |qd: usize| {
            let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
            let f = run_job(&mut dev, &fill_job()).unwrap();
            let job = FioJob::new(AccessPattern::RandRead, 4096)
                .region(0, 4 * MIB)
                .ops_per_thread(1500)
                .bytes_per_thread(u64::MAX)
                .queue_depth(qd)
                .start_at(f.finished);
            run_job_qd(&mut dev, &job).unwrap().kiops()
        };
        let qd1 = run_qd(1);
        let qd4 = run_qd(4);
        let qd16 = run_qd(16);
        assert!(qd4 > qd1 * 2.0, "qd1 {qd1:.1} vs qd4 {qd4:.1} KIOPS");
        assert!(qd16 >= qd4, "qd4 {qd4:.1} vs qd16 {qd16:.1} KIOPS");
        // Four chips: scaling flattens well before 16x.
        assert!(qd16 < qd1 * 8.0, "saturation expected: qd16 {qd16:.1}");
    }

    /// Two tenants on one device: per-tenant counters sum exactly to the
    /// device-wide delta, and both make progress.
    #[test]
    fn two_tenant_counters_sum_to_device_totals() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let f = run_job(&mut dev, &fill_job()).unwrap();
        let reader = |name: &str| {
            TenantSpec::new(
                name,
                FioJob::new(AccessPattern::RandRead, 4096)
                    .region(0, 4 * MIB)
                    .ops_per_thread(400)
                    .bytes_per_thread(u64::MAX)
                    .queue_depth(4)
                    .start_at(f.finished),
            )
        };
        let m = run_tenants(
            &mut dev,
            &[reader("a"), reader("b").weight(2)],
            &QdOptions::default(),
        )
        .unwrap();
        assert_eq!(m.tenants.len(), 2);
        assert_eq!(m.ops, 800);
        assert!(m.tenants.iter().all(|t| t.ops == 400));
        assert!(m.tenants_sum_consistent());
        assert_eq!(
            m.tenants
                .iter()
                .map(|t| t.counters.host_read_ops)
                .sum::<u64>(),
            m.counters.host_read_ops
        );
    }

    /// A writer and a reader share the device: attribution separates
    /// their traffic, and the conservation invariant still holds.
    #[test]
    fn mixed_tenants_attribution_separates_traffic() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let f = run_job(&mut dev, &fill_job()).unwrap();
        let reader = TenantSpec::new(
            "reader",
            FioJob::new(AccessPattern::RandRead, 4096)
                .region(0, 4 * MIB)
                .ops_per_thread(300)
                .bytes_per_thread(u64::MAX)
                .queue_depth(4)
                .start_at(f.finished),
        );
        let writer = TenantSpec::new(
            "writer",
            FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
                .zone_bytes(MIB)
                .region(4 * MIB, 4 * MIB)
                .bytes_per_thread(2 * MIB)
                .start_at(f.finished),
        );
        let m = run_tenants(&mut dev, &[reader, writer], &QdOptions::default()).unwrap();
        assert!(m.tenants_sum_consistent());
        let r = &m.tenants[0];
        let w = &m.tenants[1];
        assert_eq!(r.counters.host_read_bytes, 300 * 4096);
        assert_eq!(r.counters.host_write_bytes, 0);
        assert_eq!(w.counters.host_write_bytes, 2 * MIB);
        assert_eq!(w.counters.host_read_bytes, 0);
        assert!(r.queue_wait.count == 300);
    }

    /// Under a saturated fetch stage, weighted arbitration divides
    /// dispatch bandwidth by weight: a 3:1 tenant pair given 3:1 work
    /// finishes at nearly the same time.
    #[test]
    fn weighted_shares_hold_under_fetch_saturation() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let f = run_job(&mut dev, &fill_job()).unwrap();
        let tenant = |name: &str, ops: u64, weight: u32| {
            TenantSpec::new(
                name,
                FioJob::new(AccessPattern::RandRead, 4096)
                    .region(0, 4 * MIB)
                    .ops_per_thread(ops)
                    .bytes_per_thread(u64::MAX)
                    .queue_depth(8)
                    .start_at(f.finished),
            )
            .weight(weight)
        };
        let opts = QdOptions {
            // ~3x a TLC read: the fetch engine, not the chips, is the
            // bottleneck, so shares are decided by the arbiter.
            fetch_cost: SimDuration::from_micros(100),
            arbiter: ArbiterKind::Weighted,
            ..QdOptions::default()
        };
        let m = run_tenants(
            &mut dev,
            &[tenant("heavy", 1500, 3), tenant("light", 500, 1)],
            &opts,
        )
        .unwrap();
        assert_eq!(m.arbiter, "wrr");
        assert!(m.tenants_sum_consistent());
        let heavy = m.tenants[0].finished.saturating_since(f.finished);
        let light = m.tenants[1].finished.saturating_since(f.finished);
        let ratio = heavy.as_nanos() as f64 / light.as_nanos() as f64;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "3:1 weights with 3:1 work should finish together, ratio {ratio:.2}"
        );
    }

    /// Round-robin fairness end to end: equal tenants finish equal work
    /// at nearly the same time.
    #[test]
    fn round_robin_is_fair_end_to_end() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let f = run_job(&mut dev, &fill_job()).unwrap();
        let tenant = |name: &str| {
            TenantSpec::new(
                name,
                FioJob::new(AccessPattern::RandRead, 4096)
                    .region(0, 4 * MIB)
                    .ops_per_thread(800)
                    .bytes_per_thread(u64::MAX)
                    .queue_depth(8)
                    .start_at(f.finished),
            )
        };
        let opts = QdOptions {
            fetch_cost: SimDuration::from_micros(50),
            ..QdOptions::default()
        };
        let m = run_tenants(&mut dev, &[tenant("a"), tenant("b")], &opts).unwrap();
        let a = m.tenants[0].finished.saturating_since(f.finished);
        let b = m.tenants[1].finished.saturating_since(f.finished);
        let ratio = a.as_nanos() as f64 / b.as_nanos() as f64;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "equal tenants should finish together, ratio {ratio:.2}"
        );
    }

    /// Non-degenerate runs emit one submit/arbitrate/complete triple per
    /// command, and one QueueCmd+QueueWait span pair per completion.
    #[test]
    fn queue_events_and_spans_cover_every_command() {
        let counting = Arc::new(CountingSink::new());
        let spans = Arc::new(SpanBuffer::with_capacity(1 << 14));
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let f = run_job(&mut dev, &fill_job()).unwrap();
        let job = FioJob::new(AccessPattern::RandRead, 4096)
            .region(0, 4 * MIB)
            .ops_per_thread(200)
            .bytes_per_thread(u64::MAX)
            .queue_depth(4)
            .start_at(f.finished);
        let opts = QdOptions {
            probe: Probe::attached(counting.clone()),
            spans: Some(spans.clone()),
            ..QdOptions::default()
        };
        let r = run_job_qd_with(&mut dev, &job, &opts).unwrap();
        assert_eq!(r.ops, 200);
        let submit = DeviceEvent::QueueSubmit {
            queue: 0,
            backlog: 0,
        }
        .kind_index();
        let arb = DeviceEvent::QueueArbitrate {
            queue: 0,
            wait_ns: 0,
        }
        .kind_index();
        let done = DeviceEvent::QueueComplete {
            queue: 0,
            inflight: 0,
        }
        .kind_index();
        assert_eq!(counting.count_of(submit), 200);
        assert_eq!(counting.count_of(arb), 200);
        assert_eq!(counting.count_of(done), 200);
        let records = spans.drain();
        assert_eq!(records.len(), 400);
        for pair in records.chunks(2) {
            let (wait, cmd) = (&pair[0], &pair[1]);
            assert_eq!(wait.kind, SpanKind::QueueWait);
            assert_eq!(cmd.kind, SpanKind::QueueCmd);
            assert_eq!(wait.parent, cmd.id);
            assert!(cmd.id < wait.id, "parent id smaller than child's");
            assert_eq!(wait.io, cmd.io);
            assert_eq!(wait.start, cmd.start);
            assert!(wait.end <= cmd.end);
        }
    }

    #[test]
    fn rejects_open_loop_and_empty_tenant_lists() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let open = FioJob::new(AccessPattern::RandRead, 4096)
            .region(0, 2 * MIB)
            .arrival_iops(1000.0);
        assert!(matches!(
            run_job_qd(&mut dev, &open),
            Err(HostError::BadJob(_))
        ));
        assert!(matches!(
            run_tenants(&mut dev, &[], &QdOptions::default()),
            Err(HostError::BadJob(_))
        ));
        // The planner's rules carry over: deep zoned sequential writes
        // stay rejected per tenant.
        let zoned = FioJob::new(AccessPattern::SeqWrite, 4096)
            .zone_bytes(MIB)
            .queue_depth(4);
        assert!(matches!(
            run_job_qd(&mut dev, &zoned),
            Err(HostError::BadJob(_))
        ));
    }

    #[test]
    fn seeded_reruns_are_deterministic() {
        let run = || {
            let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
            let f = run_job(&mut dev, &fill_job()).unwrap();
            let tenant = |name: &str, seed: u64| {
                TenantSpec::new(
                    name,
                    FioJob::new(AccessPattern::RandRead, 4096)
                        .region(0, 4 * MIB)
                        .ops_per_thread(300)
                        .bytes_per_thread(u64::MAX)
                        .queue_depth(4)
                        .seed(seed)
                        .start_at(f.finished),
                )
            };
            let m = run_tenants(
                &mut dev,
                &[tenant("a", 7), tenant("b", 11)],
                &QdOptions {
                    fetch_cost: SimDuration::from_micros(5),
                    arbiter: ArbiterKind::Weighted,
                    ..QdOptions::default()
                },
            )
            .unwrap();
            (
                m.finished,
                m.latency,
                m.tenants[0].counters,
                m.tenants[1].queue_wait,
            )
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::job::AccessPattern;
    use crate::runner::run_job;
    use conzone_core::ConZone;
    use conzone_types::DeviceConfig;
    use proptest::prelude::*;

    const MIB: u64 = 1024 * 1024;

    #[derive(Debug, Clone, Copy)]
    enum Shape {
        SeqWriteZoned,
        RandRead,
        Mixed,
    }

    fn job_for(shape: Shape, seed: u64, threads: usize, bs_kib: u64) -> (FioJob, bool) {
        let bs = bs_kib * 1024;
        match shape {
            Shape::SeqWriteZoned => (
                FioJob::new(AccessPattern::SeqWrite, bs)
                    .zone_bytes(MIB)
                    .region(0, 4 * MIB)
                    .bytes_per_thread(MIB)
                    .threads(threads)
                    .seed(seed),
                false,
            ),
            Shape::RandRead => (
                FioJob::new(AccessPattern::RandRead, bs)
                    .region(0, 4 * MIB)
                    .ops_per_thread(60)
                    .bytes_per_thread(u64::MAX)
                    .threads(threads)
                    .seed(seed),
                true,
            ),
            Shape::Mixed => (
                FioJob::new(AccessPattern::Mixed { read_percent: 50 }, bs)
                    .region(0, 4 * MIB)
                    .ops_per_thread(60)
                    .bytes_per_thread(u64::MAX)
                    .threads(threads)
                    .seed(seed),
                true,
            ),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// The equivalence guard, property form: any seed, pattern, block
        /// size and thread count produces identical reports through both
        /// drivers at queue depth 1.
        #[test]
        fn qd1_matches_sync_runner(
            shape in prop_oneof![
                Just(Shape::SeqWriteZoned),
                Just(Shape::RandRead),
                Just(Shape::Mixed),
            ],
            seed in any::<u64>(),
            threads in 1usize..3,
            bs_kib in prop_oneof![Just(4u64), Just(16), Just(128)],
        ) {
            let (job, needs_fill) = job_for(shape, seed, threads, bs_kib);
            // Mixed jobs issue random writes, which strict sequential
            // zones reject — run those on the legacy model instead.
            let mut sync_dev: Box<dyn StorageDevice> = match shape {
                Shape::Mixed => {
                    Box::new(conzone_legacy::LegacyDevice::new(DeviceConfig::tiny_for_tests()))
                }
                _ => Box::new(ConZone::new(DeviceConfig::tiny_for_tests())),
            };
            let mut qd_dev: Box<dyn StorageDevice> = match shape {
                Shape::Mixed => {
                    Box::new(conzone_legacy::LegacyDevice::new(DeviceConfig::tiny_for_tests()))
                }
                _ => Box::new(ConZone::new(DeviceConfig::tiny_for_tests())),
            };
            let mut fill = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
                .region(0, 4 * MIB)
                .bytes_per_thread(4 * MIB);
            if !matches!(shape, Shape::Mixed) {
                fill = fill.zone_bytes(MIB);
            }
            let mut job = job;
            if needs_fill {
                let f1 = run_job(sync_dev.as_mut(), &fill).unwrap();
                let f2 = run_job_qd(qd_dev.as_mut(), &fill).unwrap();
                prop_assert_eq!(f1.finished, f2.finished);
                job = job.start_at(f1.finished);
            }
            let a = run_job(sync_dev.as_mut(), &job).unwrap();
            let b = run_job_qd(qd_dev.as_mut(), &job).unwrap();
            prop_assert_eq!(a.finished, b.finished);
            prop_assert_eq!(a.bytes, b.bytes);
            prop_assert_eq!(a.ops, b.ops);
            prop_assert_eq!(a.latency, b.latency);
            prop_assert_eq!(a.read_latency, b.read_latency);
            prop_assert_eq!(a.write_latency, b.write_latency);
            prop_assert_eq!(&a.thread_latency, &b.thread_latency);
            prop_assert_eq!(a.counters, b.counters);
        }

        /// Conservation holds for arbitrary two-tenant mixes.
        #[test]
        fn tenant_counters_always_sum(
            seed in any::<u64>(),
            qd_a in 1usize..6,
            qd_b in 1usize..6,
            weight_a in 1u32..5,
        ) {
            let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
            let fill = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
                .zone_bytes(MIB)
                .region(0, 4 * MIB)
                .bytes_per_thread(4 * MIB);
            let f = run_job(&mut dev, &fill).unwrap();
            let tenant = |name: &str, qd: usize, s: u64| {
                TenantSpec::new(
                    name,
                    FioJob::new(AccessPattern::RandRead, 4096)
                        .region(0, 4 * MIB)
                        .ops_per_thread(80)
                        .bytes_per_thread(u64::MAX)
                        .queue_depth(qd)
                        .seed(s)
                        .start_at(f.finished),
                )
            };
            let m = run_tenants(
                &mut dev,
                &[tenant("a", qd_a, seed).weight(weight_a), tenant("b", qd_b, seed ^ 1)],
                &QdOptions {
                    fetch_cost: SimDuration::from_micros(2),
                    arbiter: ArbiterKind::Weighted,
                    ..QdOptions::default()
                },
            )
            .unwrap();
            prop_assert!(m.tenants_sum_consistent());
            prop_assert_eq!(m.ops, 160);
        }
    }
}
