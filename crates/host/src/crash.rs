//! Crash-consistency verification across an unclean power cycle.
//!
//! [`power_cycle_and_verify`] yanks the plug on a device mid-workload,
//! remounts it, and audits the device's own [`RecoveryReport`] against
//! ground truth:
//!
//! * **balance** — `recovered + lost` must equal the slices that were in
//!   flight (buffered or SLC-staged) at the cut; the device may not
//!   silently drop or invent data;
//! * **recovered data** — every logical page the device claims to have
//!   recovered must read back with the exact payload the workload wrote
//!   (regenerated from `(seed, offset)` via [`payload_for`]);
//! * **lost data** — every logical page the device reports lost must read
//!   as unwritten, never as stale or phantom data.
//!
//! The workload must have been driven with `verify_data` payloads (and
//! `data_backing` on the device) for the byte-level comparison; without
//! payloads the balance and lost-range audits still run.

use conzone_types::{
    DeviceError, IoRequest, PowerCycle, RecoveryReport, SimTime, StorageDevice, SLICE_BYTES,
};

use crate::runner::HostError;
use crate::verify::payload_for;

/// Outcome of a verified power cycle.
#[derive(Debug, Clone)]
pub struct CrashVerdict {
    /// The device's own account of the recovery.
    pub report: RecoveryReport,
    /// Slices in flight (volatile or replayable) at the cut instant.
    pub in_flight_at_cut: u64,
    /// Recovered slices whose payload was re-read and byte-compared.
    pub verified_recovered_slices: u64,
    /// Lost slices confirmed to read as unwritten after remount.
    pub verified_lost_slices: u64,
}

impl core::fmt::Display for CrashVerdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} (in flight at cut: {}, byte-verified: {}, confirmed lost: {})",
            self.report,
            self.in_flight_at_cut,
            self.verified_recovered_slices,
            self.verified_lost_slices
        )
    }
}

/// Cuts power at `cut_at`, remounts, and audits the recovery report.
///
/// `seed` must match the seed the workload generated its payloads with.
///
/// # Errors
///
/// [`HostError::Crash`] on any balance or lost-range violation,
/// [`HostError::VerifyMismatch`] when recovered data reads back wrong, and
/// [`HostError::Device`] when the device rejects the power cycle itself.
pub fn power_cycle_and_verify<D: StorageDevice + PowerCycle + ?Sized>(
    dev: &mut D,
    seed: u64,
    cut_at: SimTime,
) -> Result<CrashVerdict, HostError> {
    let in_flight = dev.in_flight_slices();
    dev.power_cut(cut_at)
        .map_err(|source| HostError::Device { offset: 0, source })?;
    let report = dev
        .remount(cut_at)
        .map_err(|source| HostError::Device { offset: 0, source })?;

    if report.recovered_slices + report.lost_slices != in_flight {
        return Err(HostError::Crash(format!(
            "recovery does not balance: {} recovered + {} lost != {} in flight at the cut",
            report.recovered_slices, report.lost_slices, in_flight
        )));
    }
    let counted: u64 = report.recovered.iter().map(|r| r.count).sum();
    if counted != report.recovered_slices {
        return Err(HostError::Crash(format!(
            "recovered ranges cover {counted} slices but the report claims {}",
            report.recovered_slices
        )));
    }
    let counted: u64 = report.lost.iter().map(|r| r.count).sum();
    if counted != report.lost_slices {
        return Err(HostError::Crash(format!(
            "lost ranges cover {counted} slices but the report claims {}",
            report.lost_slices
        )));
    }

    let t = report.finished;
    let mut verified_recovered = 0u64;
    for run in &report.recovered {
        let offset = run.start.byte_offset();
        let len = run.count * SLICE_BYTES;
        let completion = dev
            .submit(t, &IoRequest::read(offset, len))
            .map_err(|source| HostError::Device { offset, source })?;
        if let Some(data) = &completion.data {
            if data != &payload_for(seed, offset, len) {
                return Err(HostError::VerifyMismatch { offset });
            }
            verified_recovered += run.count;
        }
    }

    let mut verified_lost = 0u64;
    for run in &report.lost {
        // Lost pages sit above the rewound write pointer (or vanished from
        // the mapping table): probe each slice and demand it is gone.
        for s in 0..run.count {
            let offset = run.start.offset(s).byte_offset();
            match dev.submit(t, &IoRequest::read(offset, SLICE_BYTES)) {
                Err(DeviceError::UnwrittenRead { .. }) => verified_lost += 1,
                Ok(_) => {
                    return Err(HostError::Crash(format!(
                        "slice at byte offset {offset} was reported lost but still reads back"
                    )));
                }
                Err(source) => return Err(HostError::Device { offset, source }),
            }
        }
    }

    Ok(CrashVerdict {
        report,
        in_flight_at_cut: in_flight,
        verified_recovered_slices: verified_recovered,
        verified_lost_slices: verified_lost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AccessPattern, FioJob};
    use crate::runner::run_job_until;
    use conzone_core::ConZone;
    use conzone_types::{DeviceConfig, SimDuration};

    fn cut_job(seed: u64) -> FioJob {
        // 8 KiB sync-less writes leave sub-unit tails buffered and force
        // buffer conflicts (zones 0 and 2 share a buffer), so the cut
        // catches both volatile and SLC-staged in-flight data.
        FioJob::new(AccessPattern::SeqWrite, 8192)
            .zone_bytes(1024 * 1024)
            .threads(2)
            .with_thread_zones(vec![vec![0], vec![2]])
            .bytes_per_thread(512 * 1024)
            .seed(seed)
            .verify(true)
    }

    #[test]
    fn interrupted_workload_survives_power_cycle() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let cut_at = SimTime::ZERO + SimDuration::from_micros(400);
        let r = run_job_until(&mut dev, &cut_job(7), cut_at).unwrap();
        assert!(r.ops > 0, "workload made progress before the cut");
        let verdict = power_cycle_and_verify(&mut dev, 7, cut_at).unwrap();
        assert_eq!(
            verdict.report.recovered_slices + verdict.report.lost_slices,
            verdict.in_flight_at_cut
        );
        assert_eq!(
            verdict.verified_recovered_slices,
            verdict.report.recovered_slices
        );
        assert_eq!(verdict.verified_lost_slices, verdict.report.lost_slices);
    }

    #[test]
    fn clean_device_cycles_with_nothing_lost() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let verdict = power_cycle_and_verify(&mut dev, 0, SimTime::ZERO).unwrap();
        assert_eq!(verdict.in_flight_at_cut, 0);
        assert_eq!(verdict.report.lost_slices, 0);
        assert_eq!(verdict.report.recovered_slices, 0);
    }

    #[test]
    fn baselines_reject_power_cycling() {
        let mut dev = conzone_legacy::LegacyDevice::new(DeviceConfig::tiny_for_tests());
        assert!(matches!(
            power_cycle_and_verify(&mut dev, 0, SimTime::ZERO),
            Err(HostError::Device { .. })
        ));
    }
}
