//! FIO-like job descriptions (paper §IV-A uses FIO micro-benchmarks).

use conzone_types::SimTime;
use serde::{Deserialize, Serialize};

/// Access pattern of a job, mirroring fio's `rw=` parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential reads.
    SeqRead,
    /// Sequential writes (zoned devices: each thread fills its own zones).
    SeqWrite,
    /// Uniform random reads.
    RandRead,
    /// Uniform random writes (Legacy / conventional zones only).
    RandWrite,
    /// Random mix of reads and writes (fio `rwmixread=`): each request is
    /// a read with the given percentage probability. Requires in-place
    /// writability (Legacy or ConZone conventional zones) and a pre-filled
    /// region so the reads land on valid data.
    Mixed {
        /// Percentage of requests that are reads, `0..=100`.
        read_percent: u8,
    },
}

impl AccessPattern {
    /// Whether the pattern issues any reads (and so needs pre-filled data).
    pub fn is_read(self) -> bool {
        matches!(
            self,
            AccessPattern::SeqRead | AccessPattern::RandRead | AccessPattern::Mixed { .. }
        )
    }
}

/// One synchronous (queue-depth-1 per thread) I/O job.
///
/// ```
/// use conzone_host::{AccessPattern, FioJob};
///
/// let job = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
///     .threads(4)
///     .region(0, 64 * 1024 * 1024)
///     .bytes_per_thread(16 * 1024 * 1024);
/// assert_eq!(job.threads, 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FioJob {
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Request size in bytes (fio `bs=`), 4 KiB aligned.
    pub block_bytes: u64,
    /// Number of synchronous threads (fio `numjobs=` with `iodepth=1`).
    pub threads: usize,
    /// Start of the addressed region in bytes.
    pub region_offset: u64,
    /// Length of the addressed region in bytes.
    pub region_bytes: u64,
    /// I/O volume per thread in bytes (`size=`); mutually exclusive with
    /// `ops_per_thread` (whichever is smaller ends the thread).
    pub bytes_per_thread: u64,
    /// Optional cap on the number of requests per thread.
    pub ops_per_thread: Option<u64>,
    /// Explicit zone assignment per thread for zoned sequential writes
    /// (zone indices relative to the device). When absent, thread `i`
    /// takes zones `i, i + threads, i + 2·threads, …` within the region.
    pub thread_zones: Option<Vec<Vec<u64>>>,
    /// Seed for random offsets.
    pub seed: u64,
    /// Simulated start time.
    pub start: SimTime,
    /// Attach verifiable payloads to writes (requires device data backing).
    pub verify_data: bool,
    /// Zone size in bytes for zoned sequential writes: threads fill whole
    /// zones instead of a flat stripe. `None` for flat devices (Legacy).
    pub zone_bytes: Option<u64>,
    /// Open-loop arrivals: submit requests at a Poisson process of this
    /// many IOPS instead of waiting for completions (read patterns only).
    /// `None` keeps the default closed-loop sync behaviour.
    // xtask-lint: allow(float-determinism) — workload arrival-rate knob; arrivals are quantized to integer ns
    pub arrival_iops: Option<f64>,
    /// Outstanding requests per thread in closed-loop mode (fio
    /// `iodepth=`); each completion immediately re-arms its slot.
    pub queue_depth: usize,
    /// Issue a device flush after every N writes (fio `fsync=`),
    /// modelling synchronous application I/O. `None` disables.
    pub fsync_every: Option<u64>,
}

impl FioJob {
    /// Creates a job with one thread over the whole device and a 64 MiB
    /// per-thread volume.
    pub fn new(pattern: AccessPattern, block_bytes: u64) -> FioJob {
        FioJob {
            pattern,
            block_bytes,
            threads: 1,
            region_offset: 0,
            region_bytes: u64::MAX, // clamped to device capacity at run time
            bytes_per_thread: 64 * 1024 * 1024,
            ops_per_thread: None,
            thread_zones: None,
            seed: 0x10_15_b0_0c,
            start: SimTime::ZERO,
            verify_data: false,
            zone_bytes: None,
            arrival_iops: None,
            queue_depth: 1,
            fsync_every: None,
        }
    }

    /// Flushes the device after every `n` writes (fio `fsync=`).
    pub fn fsync_every(mut self, n: u64) -> FioJob {
        self.fsync_every = Some(n);
        self
    }

    /// Sets the closed-loop queue depth per thread (fio `iodepth=`).
    pub fn queue_depth(mut self, qd: usize) -> FioJob {
        self.queue_depth = qd;
        self
    }

    /// Switches to open-loop Poisson arrivals at `iops` requests/second
    /// (read patterns only; latency then includes queueing delay).
    // xtask-lint: allow(float-determinism) — workload arrival-rate knob; arrivals are quantized to integer ns
    pub fn arrival_iops(mut self, iops: f64) -> FioJob {
        self.arrival_iops = Some(iops);
        self
    }

    /// Declares the device's zone size so sequential writes fill whole
    /// zones (required for zoned devices).
    pub fn zone_bytes(mut self, bytes: u64) -> FioJob {
        self.zone_bytes = Some(bytes);
        self
    }

    /// Sets the number of threads.
    pub fn threads(mut self, n: usize) -> FioJob {
        self.threads = n;
        self
    }

    /// Restricts the job to `[offset, offset + bytes)`.
    pub fn region(mut self, offset: u64, bytes: u64) -> FioJob {
        self.region_offset = offset;
        self.region_bytes = bytes;
        self
    }

    /// Sets the per-thread I/O volume in bytes.
    pub fn bytes_per_thread(mut self, bytes: u64) -> FioJob {
        self.bytes_per_thread = bytes;
        self
    }

    /// Caps the number of requests per thread.
    pub fn ops_per_thread(mut self, ops: u64) -> FioJob {
        self.ops_per_thread = Some(ops);
        self
    }

    /// Assigns explicit zones to each thread (sequential zoned writes).
    pub fn with_thread_zones(mut self, zones: Vec<Vec<u64>>) -> FioJob {
        self.thread_zones = Some(zones);
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> FioJob {
        self.seed = seed;
        self
    }

    /// Sets the simulated start time.
    pub fn start_at(mut self, start: SimTime) -> FioJob {
        self.start = start;
        self
    }

    /// Enables payload generation and verification.
    pub fn verify(mut self, on: bool) -> FioJob {
        self.verify_data = on;
        self
    }

    /// Number of requests each thread will issue.
    pub fn requests_per_thread(&self) -> u64 {
        let by_bytes = self.bytes_per_thread / self.block_bytes;
        match self.ops_per_thread {
            Some(ops) => ops.min(by_bytes.max(1)),
            None => by_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let j = FioJob::new(AccessPattern::RandRead, 4096)
            .threads(2)
            .region(4096, 1 << 20)
            .bytes_per_thread(1 << 20)
            .seed(42);
        assert_eq!(j.block_bytes, 4096);
        assert_eq!(j.threads, 2);
        assert_eq!(j.region_offset, 4096);
        assert_eq!(j.requests_per_thread(), 256);
    }

    #[test]
    fn ops_cap_applies() {
        let j = FioJob::new(AccessPattern::RandRead, 4096)
            .bytes_per_thread(1 << 30)
            .ops_per_thread(100);
        assert_eq!(j.requests_per_thread(), 100);
    }

    #[test]
    fn pattern_direction() {
        assert!(AccessPattern::SeqRead.is_read());
        assert!(AccessPattern::RandRead.is_read());
        assert!(!AccessPattern::SeqWrite.is_read());
        assert!(!AccessPattern::RandWrite.is_read());
    }
}
