//! A miniature F2FS-like log-structured allocator.
//!
//! Consumer devices run F2FS on top of zoned storage (paper §I/§II-B):
//! the file system keeps up to six logs open simultaneously — hot / warm /
//! cold, each for data and node (metadata) blocks — writes each log
//! strictly sequentially into its own zone, and reclaims space by
//! migrating live blocks out of a victim zone and resetting it.
//!
//! `F2fsLite` reproduces exactly that access pattern so examples and
//! benches can exercise the write-buffer pressure the paper's §II-B
//! arithmetic describes (six open zones sharing two device write buffers).

use std::collections::{BTreeMap, VecDeque};

use conzone_types::{DeviceError, IoRequest, SimTime, ZoneId, ZonedDevice, SLICE_BYTES};

/// Data temperature, following F2FS's hot/warm/cold separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Temperature {
    /// Frequently updated data (directory blocks, small overwrites).
    Hot,
    /// Ordinary file data.
    Warm,
    /// Write-once data (media files, GC migrations).
    Cold,
}

/// The six F2FS logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LogKind {
    Data(Temperature),
    Node(Temperature),
}

const LOG_ORDER: [LogKind; 6] = [
    LogKind::Data(Temperature::Hot),
    LogKind::Data(Temperature::Warm),
    LogKind::Data(Temperature::Cold),
    LogKind::Node(Temperature::Hot),
    LogKind::Node(Temperature::Warm),
    LogKind::Node(Temperature::Cold),
];

fn log_index(kind: LogKind) -> usize {
    LOG_ORDER
        .iter()
        .position(|k| *k == kind)
        .expect("known log")
}

#[derive(Debug, Clone, Copy)]
struct LogCursor {
    zone: u64,
    wp_slices: u64,
}

/// Aggregate statistics of the allocator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct F2fsStats {
    /// Data blocks written on behalf of files.
    pub data_blocks: u64,
    /// Node (metadata) blocks written.
    pub node_blocks: u64,
    /// Segment-cleaning passes.
    pub cleanings: u64,
    /// Live blocks migrated by cleaning.
    pub migrated_blocks: u64,
    /// Zones reset.
    pub zone_resets: u64,
}

/// Sentinel block index marking a node block in the owner map.
const NODE_BLOCK: u64 = u64::MAX;

/// The F2FS-like allocator. Drives any [`ZonedDevice`].
#[derive(Debug)]
pub struct F2fsLite {
    zone_bytes: u64,
    zone_slices: u64,
    nzones: u64,
    logs: [Option<LogCursor>; 6],
    free_zones: VecDeque<u64>,
    /// file → logical block index → device slice address.
    files: BTreeMap<u64, BTreeMap<u64, u64>>,
    /// file → node block device slices.
    nodes: BTreeMap<u64, Vec<u64>>,
    /// device slice → (file, block index or NODE_BLOCK).
    owners: BTreeMap<u64, (u64, u64)>,
    /// live slices per zone.
    zone_live: Vec<u64>,
    /// written slices per zone (from this allocator's perspective).
    zone_written: Vec<u64>,
    /// one node block per this many data blocks.
    node_interval: u64,
    pending_node: [u64; 6],
    /// Guards against recursive cleaning while cleaning's own migration
    /// writes allocate space.
    cleaning: bool,
    /// When set, node blocks live as in-place slots inside the device's
    /// first `n` conventional zones (paper §III-E: "updating the metadata
    /// of F2FS") instead of flowing through the node logs.
    conventional_meta_zones: Option<u64>,
    node_slots: BTreeMap<u64, u64>,
    free_node_slots: Vec<u64>,
    next_node_slot: u64,
    stats: F2fsStats,
}

impl F2fsLite {
    /// Creates an allocator spanning every zone of the device.
    pub fn new<D: ZonedDevice + ?Sized>(dev: &D) -> F2fsLite {
        let zone_bytes = dev.zone_size();
        let nzones = dev.zone_count() as u64;
        F2fsLite {
            zone_bytes,
            zone_slices: zone_bytes / SLICE_BYTES,
            nzones,
            logs: [None; 6],
            free_zones: (0..nzones).collect(),
            files: BTreeMap::new(),
            nodes: BTreeMap::new(),
            owners: BTreeMap::new(),
            zone_live: vec![0; nzones as usize],
            zone_written: vec![0; nzones as usize],
            node_interval: 64,
            pending_node: [0; 6],
            cleaning: false,
            conventional_meta_zones: None,
            node_slots: BTreeMap::new(),
            free_node_slots: Vec::new(),
            next_node_slot: 0,
            stats: F2fsStats::default(),
        }
    }

    /// Creates an allocator that keeps node (metadata) blocks as in-place
    /// slots inside the device's first `meta_zones` conventional zones —
    /// the §III-E metadata use case. The device must be configured with
    /// at least that many [`conventional_zones`]; the data logs use the
    /// remaining sequential zones.
    ///
    /// # Panics
    ///
    /// Panics if `meta_zones` is zero or covers every zone.
    ///
    /// [`conventional_zones`]: conzone_types::DeviceConfig::conventional_zones
    pub fn with_conventional_metadata<D: ZonedDevice + ?Sized>(
        dev: &D,
        meta_zones: u64,
    ) -> F2fsLite {
        let nzones = dev.zone_count() as u64;
        assert!(meta_zones > 0 && meta_zones < nzones);
        let mut fs = F2fsLite::new(dev);
        fs.conventional_meta_zones = Some(meta_zones);
        fs.free_zones = (meta_zones..nzones).collect();
        fs
    }

    /// Statistics so far.
    pub fn stats(&self) -> F2fsStats {
        self.stats
    }

    /// Free (never-written or reset) zones remaining.
    pub fn free_zones(&self) -> usize {
        self.free_zones.len()
    }

    /// Live 4 KiB blocks tracked by the allocator.
    pub fn live_blocks(&self) -> u64 {
        self.owners.len() as u64
    }

    fn zone_is_log_active(&self, zone: u64) -> bool {
        // Only a zone the log is still writing into is protected; a full
        // zone that a log merely last touched is a normal cleaning victim.
        self.logs
            .iter()
            .flatten()
            .any(|c| c.zone == zone && c.wp_slices < self.zone_slices)
    }

    /// Takes the next slice of a log, opening a new zone when needed.
    fn alloc_slice<D: ZonedDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        now: SimTime,
        log: usize,
    ) -> Result<(u64, SimTime), DeviceError> {
        let mut t = now;
        let needs_zone = match self.logs[log] {
            Some(c) => c.wp_slices == self.zone_slices,
            None => true,
        };
        if needs_zone {
            // Keep a small reserve so cleaning's own cold-log destinations
            // (data + node) always find zones; clean until the reserve is
            // restored or nothing reclaimable remains.
            while self.free_zones.len() < 3 && !self.cleaning {
                match self.clean(dev, t) {
                    Ok(t2) => t = t2,
                    Err(e) if self.free_zones.is_empty() => return Err(e),
                    Err(_) => break,
                }
            }
            let zone = self
                .free_zones
                .pop_front()
                .ok_or_else(|| DeviceError::NoFreeSpace {
                    at: t,
                    what: "f2fs-lite out of free zones".to_string(),
                })?;
            self.logs[log] = Some(LogCursor { zone, wp_slices: 0 });
        }
        let cursor = self.logs[log].as_mut().expect("log opened above");
        let lpn = cursor.zone * self.zone_slices + cursor.wp_slices;
        cursor.wp_slices += 1;
        Ok((lpn, t))
    }

    fn stale_slice(&mut self, lpn: u64) {
        if self.owners.remove(&lpn).is_some() {
            let zone = (lpn / self.zone_slices) as usize;
            self.zone_live[zone] -= 1;
        }
    }

    fn record_slice(&mut self, lpn: u64, file: u64, block: u64) {
        let zone = (lpn / self.zone_slices) as usize;
        self.owners.insert(lpn, (file, block));
        self.zone_live[zone] += 1;
        self.zone_written[zone] = self.zone_written[zone].max(lpn % self.zone_slices + 1);
    }

    /// Writes `blocks` consecutive 4 KiB blocks of `file` starting at file
    /// block `start`, through the temperature-matched data log, emitting
    /// periodic node updates into the node log. Returns the completion
    /// time.
    ///
    /// # Errors
    ///
    /// Propagates device errors; runs cleaning automatically when free
    /// zones run low.
    pub fn write_file<D: ZonedDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        now: SimTime,
        file: u64,
        start: u64,
        blocks: u64,
        temp: Temperature,
    ) -> Result<SimTime, DeviceError> {
        let data_log = log_index(LogKind::Data(temp));
        let node_log = log_index(LogKind::Node(temp));
        let mut t = now;
        // Coalesce consecutive allocations into single device writes.
        let mut run_start: Option<u64> = None;
        let mut run_len = 0u64;
        let flush_run = |dev: &mut D,
                         t: SimTime,
                         run_start: &mut Option<u64>,
                         run_len: &mut u64|
         -> Result<SimTime, DeviceError> {
            if let Some(first) = run_start.take() {
                let req = IoRequest::write(first * SLICE_BYTES, *run_len * SLICE_BYTES);
                let c = dev.submit(t, &req)?;
                *run_len = 0;
                return Ok(c.finished);
            }
            Ok(t)
        };

        for b in start..start + blocks {
            // Invalidate the previous version of this block.
            if let Some(&old) = self.files.get(&file).and_then(|m| m.get(&b)) {
                self.stale_slice(old);
            }
            let (lpn, t2) = self.alloc_slice(dev, t, data_log)?;
            if t2 != t {
                // Cleaning interleaved: flush any open run first so write
                // pointers stay consistent.
                t = flush_run(dev, t2, &mut run_start, &mut run_len)?;
            }
            match run_start {
                Some(first) if first + run_len == lpn => run_len += 1,
                Some(_) => {
                    t = flush_run(dev, t, &mut run_start, &mut run_len)?;
                    run_start = Some(lpn);
                    run_len = 1;
                }
                None => {
                    run_start = Some(lpn);
                    run_len = 1;
                }
            }
            self.files.entry(file).or_default().insert(b, lpn);
            self.record_slice(lpn, file, b);
            self.stats.data_blocks += 1;

            // Node update cadence.
            self.pending_node[data_log] += 1;
            if self.pending_node[data_log] >= self.node_interval {
                self.pending_node[data_log] = 0;
                t = flush_run(dev, t, &mut run_start, &mut run_len)?;
                t = self.write_node(dev, t, file, node_log)?;
            }
        }
        t = flush_run(dev, t, &mut run_start, &mut run_len)?;
        Ok(t)
    }

    fn write_node<D: ZonedDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        now: SimTime,
        file: u64,
        node_log: usize,
    ) -> Result<SimTime, DeviceError> {
        // In-place metadata: update the file's fixed node slot inside the
        // conventional area — no log traffic, no cleaning involvement.
        if let Some(meta_zones) = self.conventional_meta_zones {
            let capacity = meta_zones * self.zone_slices;
            let slot = match self.node_slots.get(&file) {
                Some(&s) => s,
                None => {
                    let s = self.free_node_slots.pop().unwrap_or_else(|| {
                        let s = self.next_node_slot;
                        self.next_node_slot += 1;
                        s
                    });
                    self.node_slots.insert(file, s);
                    s
                }
            } % capacity;
            let c = dev.submit(now, &IoRequest::write(slot * SLICE_BYTES, SLICE_BYTES))?;
            self.stats.node_blocks += 1;
            return Ok(c.finished);
        }
        // A node rewrite supersedes the file's previous newest node block.
        if let Some(list) = self.nodes.get_mut(&file) {
            if let Some(old) = list.pop() {
                self.stale_slice(old);
            }
        }
        let (lpn, t) = self.alloc_slice(dev, now, node_log)?;
        let c = dev.submit(t, &IoRequest::write(lpn * SLICE_BYTES, SLICE_BYTES))?;
        self.nodes.entry(file).or_default().push(lpn);
        self.record_slice(lpn, file, NODE_BLOCK);
        self.stats.node_blocks += 1;
        Ok(c.finished)
    }

    /// Deletes a file: all its data and node blocks become stale (zones are
    /// reclaimed later by cleaning). No device I/O is issued.
    pub fn delete_file(&mut self, file: u64) {
        if let Some(blocks) = self.files.remove(&file) {
            for (_, lpn) in blocks {
                self.stale_slice(lpn);
            }
        }
        if let Some(nodes) = self.nodes.remove(&file) {
            for lpn in nodes {
                self.stale_slice(lpn);
            }
        }
        if let Some(slot) = self.node_slots.remove(&file) {
            self.free_node_slots.push(slot);
        }
    }

    /// One segment-cleaning pass: migrate the live blocks of the dirtiest
    /// victim zone into the cold logs, then reset it.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoFreeSpace`] when no zone is reclaimable.
    pub fn clean<D: ZonedDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        now: SimTime,
    ) -> Result<SimTime, DeviceError> {
        // Victim: written zone, not log-active, with the most stale
        // slices. A victim with no stale space would free nothing.
        let victim = (0..self.nzones)
            .filter(|&z| {
                self.zone_written[z as usize] > self.zone_live[z as usize]
                    && !self.zone_is_log_active(z)
                    && !self.free_zones.contains(&z)
            })
            .max_by_key(|&z| self.zone_written[z as usize] - self.zone_live[z as usize])
            .ok_or_else(|| DeviceError::NoFreeSpace {
                at: now,
                what: "f2fs-lite found no cleanable zone".to_string(),
            })?;
        self.stats.cleanings += 1;
        self.cleaning = true;
        let result = self.clean_victim(dev, now, victim);
        self.cleaning = false;
        result
    }

    /// Migrates the victim's live blocks and resets it (the body of
    /// [`F2fsLite::clean`], split out so the re-entrancy flag always
    /// resets).
    fn clean_victim<D: ZonedDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        now: SimTime,
        victim: u64,
    ) -> Result<SimTime, DeviceError> {
        let mut t = now;

        // Migrate live blocks.
        let live: Vec<(u64, (u64, u64))> = self
            .owners
            .iter()
            .filter(|(lpn, _)| **lpn / self.zone_slices == victim)
            .map(|(l, o)| (*l, *o))
            .collect();
        let mut live = live;
        live.sort_unstable_by_key(|(l, _)| *l);
        for (old_lpn, (file, block)) in live {
            let c = dev.submit(t, &IoRequest::read(old_lpn * SLICE_BYTES, SLICE_BYTES))?;
            t = c.finished;
            let dest_log = if block == NODE_BLOCK {
                log_index(LogKind::Node(Temperature::Cold))
            } else {
                log_index(LogKind::Data(Temperature::Cold))
            };
            let (new_lpn, t2) = self.alloc_slice(dev, t, dest_log)?;
            t = t2;
            let c = dev.submit(t, &IoRequest::write(new_lpn * SLICE_BYTES, SLICE_BYTES))?;
            t = c.finished;
            self.stale_slice(old_lpn);
            self.record_slice(new_lpn, file, block);
            if block == NODE_BLOCK {
                let list = self.nodes.entry(file).or_default();
                if let Some(slot) = list.iter_mut().find(|l| **l == old_lpn) {
                    *slot = new_lpn;
                } else {
                    list.push(new_lpn);
                }
            } else {
                self.files.entry(file).or_default().insert(block, new_lpn);
            }
            self.stats.migrated_blocks += 1;
        }

        // Reset and free the victim.
        let c = dev.reset_zone(t, ZoneId(victim))?;
        t = c.finished;
        self.zone_written[victim as usize] = 0;
        debug_assert_eq!(self.zone_live[victim as usize], 0);
        self.free_zones.push_back(victim);
        self.stats.zone_resets += 1;
        Ok(t)
    }

    /// Device slice currently holding file block `(file, block)`, if live.
    pub fn locate(&self, file: u64, block: u64) -> Option<u64> {
        self.files.get(&file)?.get(&block).copied()
    }

    /// Zone size this allocator was built for, in bytes.
    pub fn zone_bytes(&self) -> u64 {
        self.zone_bytes
    }

    /// Per-zone `(written, live)` slice counts, for diagnostics.
    pub fn debug_zones(&self) -> Vec<(u64, u64)> {
        self.zone_written
            .iter()
            .zip(&self.zone_live)
            .map(|(w, l)| (*w, *l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conzone_core::ConZone;
    use conzone_types::{DeviceConfig, StorageDevice};

    fn dev() -> ConZone {
        // Timing-only (no payload), ample open-zone budget.
        ConZone::new(
            DeviceConfig::builder(conzone_types::Geometry::tiny())
                .chunk_bytes(256 * 1024)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn write_files_across_logs() {
        let mut d = dev();
        let mut fs = F2fsLite::new(&d);
        let mut t = SimTime::ZERO;
        t = fs
            .write_file(&mut d, t, 1, 0, 100, Temperature::Warm)
            .unwrap();
        t = fs
            .write_file(&mut d, t, 2, 0, 100, Temperature::Cold)
            .unwrap();
        let _ = fs
            .write_file(&mut d, t, 3, 0, 10, Temperature::Hot)
            .unwrap();
        let s = fs.stats();
        assert_eq!(s.data_blocks, 210);
        assert!(s.node_blocks > 0, "node cadence fired");
        assert_eq!(fs.live_blocks(), 210 + s.node_blocks);
        // Three data logs and at least one node log hold open zones.
        assert!(fs.free_zones() < 16);
    }

    #[test]
    fn overwrite_creates_stale_blocks() {
        let mut d = dev();
        let mut fs = F2fsLite::new(&d);
        let mut t = SimTime::ZERO;
        t = fs
            .write_file(&mut d, t, 1, 0, 50, Temperature::Warm)
            .unwrap();
        let first = fs.locate(1, 0).unwrap();
        let _ = fs
            .write_file(&mut d, t, 1, 0, 50, Temperature::Warm)
            .unwrap();
        let second = fs.locate(1, 0).unwrap();
        assert_ne!(first, second, "log-structured: overwrite relocates");
        assert_eq!(fs.stats().data_blocks, 100);
    }

    #[test]
    fn cleaning_reclaims_zones() {
        let mut d = dev();
        let mut fs = F2fsLite::new(&d);
        let mut t = SimTime::ZERO;
        // Churn: repeatedly rewrite a working set larger than one zone so
        // stale blocks accumulate and free zones are consumed.
        for round in 0..12u64 {
            t = fs
                .write_file(&mut d, t, round % 3, 0, 600, Temperature::Warm)
                .unwrap();
        }
        let s = fs.stats();
        assert!(s.cleanings > 0, "cleaning ran: {s:?}");
        assert!(s.zone_resets > 0);
        assert!(d.counters().zone_resets > 0, "resets reached the device");
        // Live accounting stays consistent.
        assert_eq!(
            fs.live_blocks(),
            fs.files.values().map(|m| m.len() as u64).sum::<u64>()
                + fs.nodes.values().map(|v| v.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn delete_file_frees_blocks() {
        let mut d = dev();
        let mut fs = F2fsLite::new(&d);
        let t = fs
            .write_file(&mut d, SimTime::ZERO, 7, 0, 64, Temperature::Warm)
            .unwrap();
        let _ = t;
        let before = fs.live_blocks();
        fs.delete_file(7);
        assert!(fs.live_blocks() < before);
        assert_eq!(fs.locate(7, 0), None);
    }
}

#[cfg(test)]
mod conventional_tests {
    use super::*;
    use conzone_core::ConZone;
    use conzone_types::{DeviceConfig, Geometry, StorageDevice};

    fn dev_with_conventional() -> ConZone {
        ConZone::new(
            DeviceConfig::builder(Geometry::tiny())
                .chunk_bytes(256 * 1024)
                .conventional_zones(2)
                .max_open_zones(8)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn metadata_lands_in_conventional_zones() {
        let mut d = dev_with_conventional();
        let mut fs = F2fsLite::with_conventional_metadata(&d, 2);
        let mut t = SimTime::ZERO;
        for file in 0..4u64 {
            t = fs
                .write_file(&mut d, t, file, 0, 200, Temperature::Warm)
                .unwrap();
        }
        let s = fs.stats();
        assert!(s.node_blocks > 0);
        let c = d.counters();
        // Every node write is an in-place conventional update.
        assert_eq!(c.conventional_updates, s.node_blocks);
        // Repeated rewrites hit the same slots in place.
        let before = d.counters().conventional_updates;
        let _ = fs
            .write_file(&mut d, t, 0, 0, 200, Temperature::Warm)
            .unwrap();
        assert!(d.counters().conventional_updates > before);
    }

    #[test]
    fn conventional_metadata_reduces_open_log_pressure() {
        // With node logs folded into conventional zones, only the three
        // data logs stay open — fewer sequential streams contending for
        // the two write buffers.
        let run = |conventional: bool| -> u64 {
            let mut d = dev_with_conventional();
            let mut fs = if conventional {
                F2fsLite::with_conventional_metadata(&d, 2)
            } else {
                F2fsLite::new(&d)
            };
            let mut t = SimTime::ZERO;
            for round in 0..3u64 {
                for file in 0..6u64 {
                    let temp = match file % 3 {
                        0 => Temperature::Hot,
                        1 => Temperature::Warm,
                        _ => Temperature::Cold,
                    };
                    t = fs
                        .write_file(&mut d, t, round * 8 + file, 0, 128, temp)
                        .unwrap();
                }
            }
            d.counters().buffer_conflicts
        };
        let with_meta = run(true);
        let without = run(false);
        assert!(
            with_meta <= without,
            "conventional metadata must not add conflicts: {with_meta} vs {without}"
        );
    }

    #[test]
    fn deleted_files_recycle_node_slots() {
        let mut d = dev_with_conventional();
        let mut fs = F2fsLite::with_conventional_metadata(&d, 2);
        let t = fs
            .write_file(&mut d, SimTime::ZERO, 1, 0, 100, Temperature::Warm)
            .unwrap();
        let slots_before = fs.next_node_slot;
        fs.delete_file(1);
        let _ = fs
            .write_file(&mut d, t, 2, 0, 100, Temperature::Warm)
            .unwrap();
        // File 2 reused file 1's slot instead of growing the area.
        assert_eq!(fs.next_node_slot, slots_before);
    }
}
