//! Deterministic payload generation for data-integrity verification.
//!
//! Payloads depend only on `(seed, byte offset)`, so a later read of the
//! same location can regenerate and compare the expected bytes without
//! remembering what was written — the same trick fio's `verify=` uses.

use bytes::Bytes;
use conzone_sim::SimRng;
use conzone_types::SLICE_BYTES;

/// Deterministic payload for the block at `offset`.
///
/// Every 4 KiB slice is generated independently from `(seed, slice
/// offset)`, so partially overlapping requests still verify.
pub fn payload_for(seed: u64, offset: u64, len: u64) -> Bytes {
    let mut v = Vec::with_capacity(len as usize);
    let slices = len / SLICE_BYTES;
    for s in 0..slices {
        let slice_off = offset + s * SLICE_BYTES;
        let mut rng = SimRng::new(seed ^ slice_off.rotate_left(17));
        // Eight random words stamped across the slice keep generation
        // cheap while remaining collision-resistant for verification.
        let mut stamp = [0u8; 64];
        for w in 0..8 {
            stamp[w * 8..(w + 1) * 8].copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        let reps = SLICE_BYTES as usize / stamp.len();
        for _ in 0..reps {
            v.extend_from_slice(&stamp);
        }
    }
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_offset_sensitive() {
        let a = payload_for(1, 0, 4096);
        let b = payload_for(1, 0, 4096);
        assert_eq!(a, b);
        let c = payload_for(1, 4096, 4096);
        assert_ne!(a, c);
        let d = payload_for(2, 0, 4096);
        assert_ne!(a, d);
    }

    #[test]
    fn composable_across_block_sizes() {
        // A 16 KiB payload equals the four 4 KiB payloads it covers.
        let big = payload_for(9, 8192, 16384);
        for s in 0..4u64 {
            let small = payload_for(9, 8192 + s * 4096, 4096);
            assert_eq!(
                &big[(s * 4096) as usize..((s + 1) * 4096) as usize],
                &small[..]
            );
        }
    }

    #[test]
    fn right_length() {
        assert_eq!(payload_for(0, 0, 512 * 1024).len(), 512 * 1024);
    }
}
