//! Host-side harness for the ConZone emulator.
//!
//! This crate plays the role FIO and the file system play in the paper's
//! evaluation (§IV): it generates well-defined request streams against any
//! [`StorageDevice`](conzone_types::StorageDevice) model and collects
//! bandwidth, IOPS, latency-percentile and write-amplification reports.
//!
//! * [`FioJob`] / [`run_job`] — fio-like synchronous jobs (sequential or
//!   random, read or write, 1..n threads at queue depth 1);
//! * [`JobReport`] — bandwidth / KIOPS / tail-latency / WAF summary;
//! * [`payload_for`] — deterministic data generation for integrity
//!   verification across the device's buffering and GC paths;
//! * [`F2fsLite`] — a six-log F2FS-like allocator reproducing the
//!   ≤6-open-zones access pattern of consumer devices (§II-B).
//!
//! ```
//! use conzone_core::ConZone;
//! use conzone_host::{run_job, AccessPattern, FioJob};
//! use conzone_types::DeviceConfig;
//!
//! let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
//! let job = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
//!     .zone_bytes(1024 * 1024)
//!     .bytes_per_thread(2 * 1024 * 1024);
//! let report = run_job(&mut dev, &job)?;
//! assert!(report.bandwidth_mibs() > 0.0);
//! # Ok::<(), conzone_host::HostError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crash;
mod f2fs;
mod fio_file;
mod job;
mod qd;
mod runner;
mod trace;
mod verify;
mod workloads;

pub use crash::{power_cycle_and_verify, CrashVerdict};
pub use f2fs::{F2fsLite, F2fsStats, Temperature};
pub use fio_file::{parse_fio_jobs, NamedJob, ParseFioError};
pub use job::{AccessPattern, FioJob};
pub use qd::{
    run_job_qd, run_job_qd_with, run_tenants, MultiReport, QdOptions, QueuePair, TenantReport,
    TenantSpec,
};
pub use runner::{run_job, run_job_sampled, run_job_until, HostError, JobReport};
pub use trace::{
    replay_budget, replay_counters, replay_trace, MobileTraceBuilder, ParseTraceError, Trace,
    TraceKind, TraceOp,
};
pub use verify::payload_for;
pub use workloads::WorkloadPreset;
