//! The synchronous multi-thread job runner.
//!
//! Threads are simulated fio sync jobs (queue depth 1): each issues its
//! next request the moment the previous one completes. A time-ordered
//! event queue interleaves threads, so device-side resource contention
//! (chips, channels, buffers) is exercised exactly as a real multi-threaded
//! host would.

use conzone_sim::{
    EventQueue, LatencyHistogram, LatencySummary, MetricsSample, MetricsSampler, SimRng,
};
use conzone_types::{
    Counters, DeviceError, IoRequest, SimDuration, SimTime, StorageDevice, SLICE_BYTES,
};

use crate::job::{AccessPattern, FioJob};
use crate::verify::payload_for;

/// Errors surfaced while running a job.
#[derive(Debug)]
pub enum HostError {
    /// The device rejected a request.
    Device {
        /// The failing request's byte offset.
        offset: u64,
        /// The underlying device error.
        source: DeviceError,
    },
    /// A verified read returned unexpected bytes.
    VerifyMismatch {
        /// The failing request's byte offset.
        offset: u64,
    },
    /// The job description is inconsistent with the device.
    BadJob(String),
    /// A power-cycle verification found a crash-consistency violation.
    Crash(String),
}

impl core::fmt::Display for HostError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HostError::Device { offset, source } => {
                write!(f, "device error at offset {offset}: {source}")
            }
            HostError::VerifyMismatch { offset } => {
                write!(f, "read verification failed at offset {offset}")
            }
            HostError::BadJob(why) => write!(f, "bad job: {why}"),
            HostError::Crash(why) => write!(f, "crash-consistency violation: {why}"),
        }
    }
}

impl std::error::Error for HostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HostError::Device { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Aggregate result of one job run.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Device model name.
    pub model: &'static str,
    /// Simulated start of the job.
    pub started: SimTime,
    /// Simulated completion of the last request.
    pub finished: SimTime,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total requests completed.
    pub ops: u64,
    /// Per-request latency distribution (all requests).
    pub latency: LatencySummary,
    /// Latency distribution of the read requests only.
    pub read_latency: LatencySummary,
    /// Latency distribution of the write requests only.
    pub write_latency: LatencySummary,
    /// Per-thread latency distributions, indexed by thread id.
    pub thread_latency: Vec<LatencySummary>,
    /// Interval counter deltas, when the job was run with a sampler
    /// ([`run_job_sampled`]); empty otherwise.
    pub metrics: Vec<MetricsSample>,
    /// Device counter delta over the job.
    pub counters: Counters,
}

impl JobReport {
    /// Wall-clock (simulated) duration of the job.
    pub fn duration(&self) -> SimDuration {
        self.finished - self.started
    }

    /// Throughput in MiB/s.
    ///
    /// An empty job (no operations) reports `0.0`. A degenerate report —
    /// operations completed in zero simulated time — reports `NaN` rather
    /// than a misleading zero, so table formatters can print `n/a`.
    pub fn bandwidth_mibs(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs == 0.0 {
            if self.ops > 0 {
                f64::NAN
            } else {
                0.0
            }
        } else {
            self.bytes as f64 / (1024.0 * 1024.0) / secs
        }
    }

    /// Throughput in thousands of I/O operations per second.
    ///
    /// Degenerate reports follow the same convention as
    /// [`bandwidth_mibs`](Self::bandwidth_mibs): `NaN` when operations
    /// completed in zero duration, `0.0` when nothing ran.
    pub fn kiops(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs == 0.0 {
            if self.ops > 0 {
                f64::NAN
            } else {
                0.0
            }
        } else {
            self.ops as f64 / 1000.0 / secs
        }
    }

    /// Write amplification over the job interval.
    pub fn waf(&self) -> f64 {
        self.counters.write_amplification()
    }
}

/// Per-thread generator state, shared between the synchronous runner and
/// the queue-pair driver (`crate::qd`).
#[derive(Debug)]
pub(crate) struct ThreadState {
    pub(crate) issued: u64,
    pub(crate) limit: u64,
    /// Sequential cursor within the thread's stripe (byte offset).
    stripe_start: u64,
    stripe_len: u64,
    cursor: u64,
    /// Zones assigned to the thread for zoned sequential writes, and the
    /// progress within them.
    zones: Vec<u64>,
    zone_idx: usize,
    zone_off: u64,
    rng: SimRng,
}

/// A validated job: the clamped region, the zoned-write geometry, and one
/// generator state per thread. Building the plan is the validation step
/// both job drivers share, so a job accepted by one is accepted — with
/// identical generator state — by the other.
#[derive(Debug)]
pub(crate) struct JobPlan {
    pub(crate) region_start: u64,
    pub(crate) region_len: u64,
    pub(crate) zone_bytes: u64,
    pub(crate) threads: Vec<ThreadState>,
}

pub(crate) fn plan_job(capacity: u64, job: &FioJob) -> Result<JobPlan, HostError> {
    let region_start = job.region_offset;
    let region_len = job.region_bytes.min(capacity.saturating_sub(region_start));
    if region_len < job.block_bytes {
        return Err(HostError::BadJob(format!(
            "region of {region_len} bytes smaller than one {}-byte block",
            job.block_bytes
        )));
    }
    if job.block_bytes == 0 || !job.block_bytes.is_multiple_of(SLICE_BYTES) {
        return Err(HostError::BadJob(format!(
            "block size {} not a multiple of 4 KiB",
            job.block_bytes
        )));
    }
    if job.threads == 0 {
        return Err(HostError::BadJob("zero threads".to_string()));
    }
    if job.queue_depth == 0 {
        return Err(HostError::BadJob("zero queue depth".to_string()));
    }
    if job.queue_depth > 1 && job.pattern == AccessPattern::SeqWrite && job.zone_bytes.is_some() {
        // Deep queues of zoned sequential writes would race the write
        // pointer on a real device; keep the model honest.
        return Err(HostError::BadJob(
            "queue_depth > 1 is not supported for zoned sequential writes".to_string(),
        ));
    }
    if job.arrival_iops.is_some() && !job.pattern.is_read() {
        return Err(HostError::BadJob(
            "open-loop arrivals require a read pattern (writes must stay ordered)".to_string(),
        ));
    }
    if let Some(iops) = job.arrival_iops {
        if iops.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(HostError::BadJob(format!("bad arrival rate {iops}")));
        }
    }
    let zone_bytes = job.zone_bytes.unwrap_or(0);

    let limit = job.requests_per_thread();
    let threads: Vec<ThreadState> = (0..job.threads)
        .map(|i| {
            let stripe_len =
                (region_len / job.threads as u64 / job.block_bytes).max(1) * job.block_bytes;
            let stripe_start = region_start + i as u64 * stripe_len;
            let zones = match (&job.thread_zones, zone_bytes) {
                (Some(z), _) => z.get(i).cloned().unwrap_or_default(),
                (None, zb) if zb > 0 => {
                    // Round-robin zones of the region across threads.
                    let first_zone = region_start / zb;
                    let nzones = region_len / zb;
                    (0..nzones)
                        .filter(|z| (*z as usize) % job.threads == i)
                        .map(|z| first_zone + z)
                        .collect()
                }
                _ => Vec::new(),
            };
            ThreadState {
                issued: 0,
                limit,
                stripe_start,
                stripe_len,
                cursor: 0,
                zones,
                zone_idx: 0,
                zone_off: 0,
                rng: SimRng::new(job.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1))),
            }
        })
        .collect();
    Ok(JobPlan {
        region_start,
        region_len,
        zone_bytes,
        threads,
    })
}

/// Runs a job against any device model and collects a [`JobReport`].
///
/// # Errors
///
/// Returns [`HostError`] when the device rejects a request, when
/// verification fails, or when the job description does not fit the
/// device (e.g. zero-length region).
pub fn run_job<D: StorageDevice + ?Sized>(
    dev: &mut D,
    job: &FioJob,
) -> Result<JobReport, HostError> {
    run_job_inner(dev, job, None, None)
}

/// Runs a job like [`run_job`] but stops issuing new requests once the
/// simulated clock reaches `stop_at` — requests already in flight complete
/// normally. The truncated [`JobReport`] covers only what actually ran.
/// Used by the crash-consistency harness to interrupt a workload at the
/// power-cut instant.
///
/// # Errors
///
/// Same failure modes as [`run_job`].
pub fn run_job_until<D: StorageDevice + ?Sized>(
    dev: &mut D,
    job: &FioJob,
    stop_at: SimTime,
) -> Result<JobReport, HostError> {
    run_job_inner(dev, job, None, Some(stop_at))
}

/// Runs a job like [`run_job`] while also collecting a [`Counters`] delta
/// per `interval` of simulated time; the series lands in
/// [`JobReport::metrics`]. The interval grid is anchored at the job start.
///
/// # Errors
///
/// Same failure modes as [`run_job`].
pub fn run_job_sampled<D: StorageDevice + ?Sized>(
    dev: &mut D,
    job: &FioJob,
    interval: SimDuration,
) -> Result<JobReport, HostError> {
    run_job_inner(dev, job, Some(interval), None)
}

fn run_job_inner<D: StorageDevice + ?Sized>(
    dev: &mut D,
    job: &FioJob,
    sample_interval: Option<SimDuration>,
    stop_at: Option<SimTime>,
) -> Result<JobReport, HostError> {
    let plan = plan_job(dev.capacity_bytes(), job)?;
    let JobPlan {
        region_start,
        region_len,
        zone_bytes,
        mut threads,
    } = plan;
    let limit = job.requests_per_thread();

    let before = dev.counters();
    let mut queue: EventQueue<usize> = EventQueue::new();
    match job.arrival_iops {
        None => {
            // Closed loop: each of the thread's queue slots re-arms on
            // completion.
            for i in 0..job.threads {
                for _ in 0..job.queue_depth {
                    queue.push(job.start, i);
                }
            }
        }
        Some(iops) => {
            // Open loop: pre-draw every arrival from a Poisson process and
            // spread them round-robin across the generator threads.
            let mut arrival_rng = SimRng::new(job.seed ^ 0xa221_7a15);
            let mut at = job.start;
            let total = limit * job.threads as u64;
            for i in 0..total {
                // Exponential inter-arrival with mean 1/iops seconds.
                let u = arrival_rng.f64().max(f64::MIN_POSITIVE);
                let gap_ns = (-u.ln() / iops * 1e9) as u64;
                at += SimDuration::from_nanos(gap_ns);
                queue.push(at, (i % job.threads as u64) as usize);
            }
        }
    }
    let open_loop = job.arrival_iops.is_some();
    let mut writes_since_fsync = 0u64;
    let mut hist = LatencyHistogram::new();
    let mut read_hist = LatencyHistogram::new();
    let mut write_hist = LatencyHistogram::new();
    let mut thread_hists: Vec<LatencyHistogram> =
        (0..job.threads).map(|_| LatencyHistogram::new()).collect();
    let mut sampler = sample_interval.map(|iv| MetricsSampler::anchored(job.start, iv, &before));
    let mut bytes = 0u64;
    let mut ops = 0u64;
    let mut finished = job.start;

    while let Some((t, th)) = queue.pop() {
        if let Some(stop) = stop_at {
            // The queue pops in time order: once one slot passes the stop
            // point, every remaining one would too.
            if t >= stop {
                break;
            }
        }
        let state = &mut threads[th];
        if state.issued >= state.limit {
            continue;
        }
        let Some((offset, is_read)) = next_offset(job, state, zone_bytes, region_start, region_len)
        else {
            continue; // thread ran out of zones
        };
        let req = if is_read {
            IoRequest::read(offset, job.block_bytes)
        } else if job.verify_data {
            IoRequest::write_data(offset, payload_for(job.seed, offset, job.block_bytes))
        } else {
            IoRequest::write(offset, job.block_bytes)
        };
        let completion = dev
            .submit(t, &req)
            .map_err(|source| HostError::Device { offset, source })?;
        if is_read && job.verify_data {
            if let Some(data) = &completion.data {
                if data != &payload_for(job.seed, offset, job.block_bytes) {
                    return Err(HostError::VerifyMismatch { offset });
                }
            }
        }
        let mut completed_at = completion.finished;
        // Synchronous I/O: the write is not done until the flush is.
        if let Some(every) = job.fsync_every {
            if !is_read {
                writes_since_fsync += 1;
                if writes_since_fsync >= every {
                    writes_since_fsync = 0;
                    let fc = dev
                        .flush(completed_at)
                        .map_err(|source| HostError::Device { offset, source })?;
                    completed_at = fc.finished;
                }
            }
        }
        let latency = completed_at - t;
        hist.record(latency);
        if is_read {
            read_hist.record(latency);
        } else {
            write_hist.record(latency);
        }
        thread_hists[th].record(latency);
        if let Some(s) = sampler.as_mut() {
            s.observe(completed_at, &dev.counters());
        }
        bytes += job.block_bytes;
        ops += 1;
        finished = finished.max(completed_at);
        state.issued += 1;
        if !open_loop {
            queue.push(completed_at, th);
        }
    }

    let after = dev.counters();
    Ok(JobReport {
        model: dev.model_name(),
        started: job.start,
        finished,
        bytes,
        ops,
        latency: hist.summary(),
        read_latency: read_hist.summary(),
        write_latency: write_hist.summary(),
        thread_latency: thread_hists.iter().map(LatencyHistogram::summary).collect(),
        metrics: sampler
            .map(|s| s.finish(finished, &after))
            .unwrap_or_default(),
        counters: after.since(&before),
    })
}

/// Produces the next request offset for a thread, or `None` when a zoned
/// writer has exhausted its zones.
pub(crate) fn next_offset(
    job: &FioJob,
    state: &mut ThreadState,
    zone_bytes: u64,
    region_start: u64,
    region_len: u64,
) -> Option<(u64, bool)> {
    let bs = job.block_bytes;
    match job.pattern {
        AccessPattern::SeqRead => {
            let offset = state.stripe_start + state.cursor;
            state.cursor = (state.cursor + bs) % state.stripe_len;
            Some((offset, true))
        }
        AccessPattern::RandRead | AccessPattern::RandWrite => {
            let blocks = region_len / bs;
            let offset = region_start + state.rng.below(blocks) * bs;
            Some((offset, job.pattern == AccessPattern::RandRead))
        }
        AccessPattern::Mixed { read_percent } => {
            let blocks = region_len / bs;
            let offset = region_start + state.rng.below(blocks) * bs;
            let is_read = state.rng.chance(f64::from(read_percent) / 100.0);
            Some((offset, is_read))
        }
        AccessPattern::SeqWrite => {
            if zone_bytes == 0 {
                // Plain sequential stream within the stripe.
                let offset = state.stripe_start + state.cursor;
                state.cursor = (state.cursor + bs) % state.stripe_len;
                return Some((offset, false));
            }
            loop {
                let zone = *state.zones.get(state.zone_idx)?;
                if state.zone_off + bs > zone_bytes {
                    state.zone_idx += 1;
                    state.zone_off = 0;
                    continue;
                }
                let offset = zone * zone_bytes + state.zone_off;
                state.zone_off += bs;
                return Some((offset, false));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conzone_core::ConZone;
    use conzone_legacy::LegacyDevice;
    use conzone_types::DeviceConfig;

    fn zoned_job(pattern: AccessPattern, bs: u64) -> FioJob {
        FioJob::new(pattern, bs).zone_bytes(1024 * 1024)
    }

    #[test]
    fn seq_write_then_read_on_conzone() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let w = zoned_job(AccessPattern::SeqWrite, 512 * 1024)
            .bytes_per_thread(4 * 1024 * 1024)
            .verify(true);
        let wr = run_job(&mut dev, &w).unwrap();
        assert_eq!(wr.bytes, 4 * 1024 * 1024);
        assert!(wr.bandwidth_mibs() > 0.0);

        let r = FioJob::new(AccessPattern::SeqRead, 512 * 1024)
            .region(0, 4 * 1024 * 1024)
            .bytes_per_thread(4 * 1024 * 1024)
            .start_at(wr.finished)
            .verify(true);
        let rr = run_job(&mut dev, &r).unwrap();
        assert_eq!(rr.ops, 8);
        assert!(rr.latency.p99 >= rr.latency.p50);
    }

    #[test]
    fn multi_thread_zoned_write_round_robin() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let job = zoned_job(AccessPattern::SeqWrite, 256 * 1024)
            .threads(4)
            .region(0, 8 * 1024 * 1024)
            .bytes_per_thread(2 * 1024 * 1024);
        let r = run_job(&mut dev, &job).unwrap();
        assert_eq!(r.bytes, 8 * 1024 * 1024);
        // Four threads writing distinct zones with two buffers: conflicts
        // are expected (zones 0 and 2 share buffer 0, etc.).
        assert!(r.counters.host_write_bytes == 8 * 1024 * 1024);
    }

    #[test]
    fn rand_read_reports_kiops() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let fill = zoned_job(AccessPattern::SeqWrite, 256 * 1024).bytes_per_thread(2 * 1024 * 1024);
        let fr = run_job(&mut dev, &fill).unwrap();
        let job = FioJob::new(AccessPattern::RandRead, 4096)
            .region(0, 2 * 1024 * 1024)
            .ops_per_thread(500)
            .bytes_per_thread(u64::MAX)
            .start_at(fr.finished);
        let r = run_job(&mut dev, &job).unwrap();
        assert_eq!(r.ops, 500);
        assert!(r.kiops() > 0.0);
        assert!(r.latency.count == 500);
    }

    #[test]
    fn mixed_pattern_on_legacy() {
        let mut dev = LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let fill = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
            .region(0, 2 * 1024 * 1024)
            .bytes_per_thread(2 * 1024 * 1024);
        let fr = run_job(&mut dev, &fill).unwrap();
        let job = FioJob::new(AccessPattern::Mixed { read_percent: 70 }, 4096)
            .region(0, 2 * 1024 * 1024)
            .ops_per_thread(400)
            .bytes_per_thread(u64::MAX)
            .start_at(fr.finished);
        let r = run_job(&mut dev, &job).unwrap();
        assert_eq!(r.ops, 400);
        let reads = r.counters.host_read_ops;
        let writes = r.counters.host_write_ops;
        assert_eq!(reads + writes, 400);
        // ~70/30 split within generous statistical slack.
        assert!((200..=350).contains(&reads), "reads {reads}");
    }

    #[test]
    fn mixed_pattern_on_conventional_zones() {
        use conzone_types::Geometry;
        let cfg = DeviceConfig::builder(Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .conventional_zones(2)
            .build()
            .unwrap();
        let mut dev = conzone_core::ConZone::new(cfg);
        // Pre-fill the whole conventional region so every read hits
        // written data.
        let fill = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
            .region(0, 2 * 1024 * 1024)
            .bytes_per_thread(2 * 1024 * 1024);
        let fr = run_job(&mut dev, &fill).unwrap();
        let job = FioJob::new(AccessPattern::Mixed { read_percent: 50 }, 4096)
            .region(0, 2 * 1024 * 1024)
            .ops_per_thread(300)
            .bytes_per_thread(u64::MAX)
            .seed(1)
            .start_at(fr.finished);
        let r = run_job(&mut dev, &job).unwrap();
        assert_eq!(r.ops, 300);
        assert!(r.counters.conventional_updates > 0);
    }

    #[test]
    fn rand_write_on_legacy() {
        let mut dev = LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let fill = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
            .region(0, 2 * 1024 * 1024)
            .bytes_per_thread(2 * 1024 * 1024);
        let fr = run_job(&mut dev, &fill).unwrap();
        let job = FioJob::new(AccessPattern::RandWrite, 4096)
            .region(0, 2 * 1024 * 1024)
            .ops_per_thread(200)
            .bytes_per_thread(u64::MAX)
            .start_at(fr.finished);
        let r = run_job(&mut dev, &job).unwrap();
        assert_eq!(r.ops, 200);
    }

    #[test]
    fn explicit_thread_zones_direct_conflicts() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        // Same parity zones → same buffer → conflicts (Fig. 6(b)).
        let job = zoned_job(AccessPattern::SeqWrite, 48 * 1024)
            .threads(2)
            .with_thread_zones(vec![vec![0], vec![2]])
            .bytes_per_thread(1024 * 1024);
        let r = run_job(&mut dev, &job).unwrap();
        assert!(r.counters.buffer_conflicts > 0);
        assert!(r.waf() > 1.0);

        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let job = zoned_job(AccessPattern::SeqWrite, 48 * 1024)
            .threads(2)
            .with_thread_zones(vec![vec![0], vec![1]])
            .bytes_per_thread(1024 * 1024);
        let r = run_job(&mut dev, &job).unwrap();
        assert_eq!(r.counters.buffer_conflicts, 0);
        assert_eq!(r.counters.flash_program_bytes_slc, 0);
        // Tail of each zone stays buffered (1 MiB is not a 48 KiB
        // multiple), so WAF is at most 1 — never amplified.
        assert!(r.waf() <= 1.0);
    }

    #[test]
    fn degenerate_reports_are_nan_not_zero() {
        let empty = LatencyHistogram::new().summary();
        let mut r = JobReport {
            model: "test",
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            bytes: 4096,
            ops: 1,
            latency: empty,
            read_latency: empty,
            write_latency: empty,
            thread_latency: Vec::new(),
            metrics: Vec::new(),
            counters: Counters::new(),
        };
        // Ops completed in zero simulated time: NaN, not a silent 0.
        assert!(r.bandwidth_mibs().is_nan());
        assert!(r.kiops().is_nan());
        // A genuinely empty report stays at zero.
        r.ops = 0;
        r.bytes = 0;
        assert_eq!(r.bandwidth_mibs(), 0.0);
        assert_eq!(r.kiops(), 0.0);
    }

    #[test]
    fn bad_jobs_rejected() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let job = FioJob::new(AccessPattern::RandRead, 4096).region(0, 0);
        assert!(matches!(run_job(&mut dev, &job), Err(HostError::BadJob(_))));
        let job = FioJob::new(AccessPattern::RandRead, 1000);
        assert!(matches!(run_job(&mut dev, &job), Err(HostError::BadJob(_))));
        let job = FioJob::new(AccessPattern::RandRead, 4096).threads(0);
        assert!(matches!(run_job(&mut dev, &job), Err(HostError::BadJob(_))));
    }

    #[test]
    fn sampled_run_yields_interval_deltas_and_thread_latencies() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let job = zoned_job(AccessPattern::SeqWrite, 128 * 1024)
            .threads(2)
            .region(0, 4 * 1024 * 1024)
            .bytes_per_thread(2 * 1024 * 1024);
        let r = run_job_sampled(&mut dev, &job, SimDuration::from_micros(500)).unwrap();
        assert_eq!(r.thread_latency.len(), 2);
        assert_eq!(r.thread_latency.iter().map(|s| s.count).sum::<u64>(), r.ops);
        assert!(!r.metrics.is_empty());
        // Interval deltas add back up to the whole-job delta, and the
        // samples tile the job's duration without gaps.
        let written: u64 = r.metrics.iter().map(|m| m.delta.host_write_bytes).sum();
        assert_eq!(written, r.counters.host_write_bytes);
        for w in r.metrics.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(r.metrics.last().unwrap().end, r.finished);
        // The unsampled path reports the same aggregate numbers.
        let mut dev2 = ConZone::new(DeviceConfig::tiny_for_tests());
        let plain = run_job(&mut dev2, &job).unwrap();
        assert_eq!(plain.finished, r.finished);
        assert!(plain.metrics.is_empty());
    }

    #[test]
    fn deterministic_reports() {
        let run = || {
            let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
            let job = zoned_job(AccessPattern::SeqWrite, 128 * 1024)
                .threads(2)
                .bytes_per_thread(1024 * 1024);
            let r = run_job(&mut dev, &job).unwrap();
            (r.finished, r.latency.p99)
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod open_loop_tests {
    use super::*;
    use crate::job::{AccessPattern, FioJob};
    use conzone_core::ConZone;
    use conzone_types::DeviceConfig;

    fn filled_device() -> (ConZone, conzone_types::SimTime) {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let fill = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
            .zone_bytes(1024 * 1024)
            .region(0, 4 * 1024 * 1024)
            .bytes_per_thread(4 * 1024 * 1024);
        let f = run_job(&mut dev, &fill).expect("fill");
        (dev, f.finished)
    }

    #[test]
    fn open_loop_latency_grows_with_load() {
        // At light load, latency ~= service time; near saturation the
        // queueing delay blows the mean up — the classic hockey stick.
        let run_at = |iops: f64| {
            let (mut dev, t0) = filled_device();
            let job = FioJob::new(AccessPattern::RandRead, 4096)
                .region(0, 4 * 1024 * 1024)
                .ops_per_thread(3000)
                .bytes_per_thread(u64::MAX)
                .arrival_iops(iops)
                .start_at(t0);
            run_job(&mut dev, &job).expect("open loop").latency.mean
        };
        // Service capacity here is ~125 KIOPS (4 chips / 32 us TLC reads),
        // so 115 K offered is ~92 % utilisation.
        let light = run_at(2_000.0);
        let heavy = run_at(115_000.0);
        assert!(
            heavy > light * 3,
            "queueing delay under load: light {light}, heavy {heavy}"
        );
    }

    #[test]
    fn open_loop_throughput_tracks_offered_load() {
        let (mut dev, t0) = filled_device();
        let job = FioJob::new(AccessPattern::RandRead, 4096)
            .region(0, 4 * 1024 * 1024)
            .ops_per_thread(5000)
            .bytes_per_thread(u64::MAX)
            .arrival_iops(10_000.0)
            .start_at(t0);
        let r = run_job(&mut dev, &job).expect("open loop");
        let achieved = r.kiops() * 1000.0;
        assert!(
            (achieved - 10_000.0).abs() / 10_000.0 < 0.1,
            "achieved {achieved} vs offered 10000"
        );
    }

    #[test]
    fn open_loop_rejects_writes() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let job = FioJob::new(AccessPattern::SeqWrite, 4096)
            .zone_bytes(1024 * 1024)
            .arrival_iops(1000.0);
        assert!(matches!(run_job(&mut dev, &job), Err(HostError::BadJob(_))));
    }
}

#[cfg(test)]
mod queue_depth_tests {
    use super::*;
    use crate::job::{AccessPattern, FioJob};
    use conzone_core::ConZone;
    use conzone_types::DeviceConfig;

    #[test]
    fn deeper_queues_raise_random_read_throughput() {
        let run_qd = |qd: usize| {
            let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
            let fill = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
                .zone_bytes(1024 * 1024)
                .region(0, 4 * 1024 * 1024)
                .bytes_per_thread(4 * 1024 * 1024);
            let f = run_job(&mut dev, &fill).expect("fill");
            let job = FioJob::new(AccessPattern::RandRead, 4096)
                .region(0, 4 * 1024 * 1024)
                .ops_per_thread(2000)
                .bytes_per_thread(u64::MAX)
                .queue_depth(qd)
                .start_at(f.finished);
            run_job(&mut dev, &job).expect("randread").kiops()
        };
        let qd1 = run_qd(1);
        let qd8 = run_qd(8);
        assert!(
            qd8 > qd1 * 2.0,
            "parallelism pays: qd1 {qd1:.1} vs qd8 {qd8:.1} KIOPS"
        );
    }

    #[test]
    fn split_latency_summaries() {
        let mut dev = conzone_legacy::LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let fill = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
            .region(0, 2 * 1024 * 1024)
            .bytes_per_thread(2 * 1024 * 1024);
        let f = run_job(&mut dev, &fill).expect("fill");
        assert_eq!(f.read_latency.count, 0);
        assert_eq!(f.write_latency.count, f.ops);
        let job = FioJob::new(AccessPattern::Mixed { read_percent: 50 }, 4096)
            .region(0, 2 * 1024 * 1024)
            .ops_per_thread(200)
            .bytes_per_thread(u64::MAX)
            .start_at(f.finished);
        let r = run_job(&mut dev, &job).expect("mixed");
        assert_eq!(r.read_latency.count + r.write_latency.count, 200);
        assert!(r.read_latency.count > 0 && r.write_latency.count > 0);
    }

    #[test]
    fn zoned_seq_write_rejects_deep_queues() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let job = FioJob::new(AccessPattern::SeqWrite, 4096)
            .zone_bytes(1024 * 1024)
            .queue_depth(4);
        assert!(matches!(run_job(&mut dev, &job), Err(HostError::BadJob(_))));
        let job = FioJob::new(AccessPattern::RandRead, 4096).queue_depth(0);
        assert!(matches!(run_job(&mut dev, &job), Err(HostError::BadJob(_))));
    }
}

#[cfg(test)]
mod fsync_tests {
    use super::*;
    use crate::job::{AccessPattern, FioJob};
    use conzone_core::ConZone;
    use conzone_legacy::LegacyDevice;
    use conzone_types::{DeviceConfig, StorageDevice};

    #[test]
    fn fsync_forces_durability_through_slc() {
        // 8 KiB sync writes: without fsync they complete from the buffer;
        // with fsync=1 every write premature-flushes into SLC.
        let run = |fsync: bool| {
            let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
            let mut job = FioJob::new(AccessPattern::SeqWrite, 8192)
                .zone_bytes(1024 * 1024)
                .region(0, 1024 * 1024)
                .bytes_per_thread(512 * 1024);
            if fsync {
                job = job.fsync_every(1);
            }
            let r = run_job(&mut dev, &job).expect("run");
            (r.counters.flash_program_bytes_slc, r.latency.p50)
        };
        let (slc_async, lat_async) = run(false);
        let (slc_sync, lat_sync) = run(true);
        assert_eq!(slc_async, 0, "buffered writes never touch SLC");
        assert!(slc_sync > 0, "fsync pushes sub-unit data into SLC");
        assert!(lat_sync > lat_async, "durability costs latency");
    }

    #[test]
    fn legacy_flush_pads_units() {
        let mut dev = LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let c = dev
            .submit(
                conzone_types::SimTime::ZERO,
                &conzone_types::IoRequest::write(0, 8192),
            )
            .unwrap();
        assert_eq!(dev.counters().flash_program_bytes(), 0, "still pending");
        let f = dev.flush(c.finished).unwrap();
        let counters = dev.counters();
        // The 8 KiB remainder was padded to a full 64 KiB unit.
        assert_eq!(counters.flash_program_bytes_tlc, 64 * 1024);
        assert_eq!(counters.premature_flushes, 1);
        // Data still readable; padding is invisible.
        let r = dev
            .submit(f.finished, &conzone_types::IoRequest::read(0, 8192))
            .unwrap();
        assert!(r.finished > f.finished);
        // GC over padded blocks doesn't trip on ownerless slices: fill and
        // churn to force GC.
        let mut t = r.finished;
        let cap = dev.capacity_bytes();
        for round in 0..10u64 {
            for off in (0..cap / 2).step_by(256 * 1024) {
                t = dev
                    .submit(t, &conzone_types::IoRequest::write(off, 256 * 1024))
                    .unwrap()
                    .finished;
                let _ = round;
            }
            t = dev.flush(t).unwrap().finished;
        }
        assert!(dev.counters().gc_runs > 0);
    }

    #[test]
    fn flush_of_clean_device_is_cheap() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let c = dev.flush(conzone_types::SimTime::ZERO).unwrap();
        assert_eq!(c.latency(), dev.config().host_overhead);
    }
}
