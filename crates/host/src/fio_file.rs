//! Parsing a subset of fio's INI job-file format into [`FioJob`]s.
//!
//! The paper's evaluation drives the emulator with FIO; this module lets
//! the same job descriptions drive the Rust emulator:
//!
//! ```ini
//! [global]
//! bs=512k
//! size=256m
//!
//! [seqwrite]
//! rw=write
//! numjobs=4
//!
//! [randread]
//! rw=randread
//! bs=4k
//! iodepth=8
//! ```
//!
//! Supported keys: `rw`/`readwrite` (`read`, `write`, `randread`,
//! `randwrite`, `randrw`), `rwmixread`, `bs`/`blocksize`, `size`,
//! `offset`, `io_size`, `numjobs`, `iodepth`, `rate_iops`, `fsync`,
//! `randseed`. `[global]` sets defaults for subsequent sections. Unknown
//! keys are rejected (better loud than silently different from fio).

use crate::job::{AccessPattern, FioJob};

/// Error from parsing a fio job file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFioError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseFioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "fio job file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseFioError {}

/// One parsed job: section name plus the configured [`FioJob`].
#[derive(Debug, Clone)]
pub struct NamedJob {
    /// The `[section]` name.
    pub name: String,
    /// The job description.
    pub job: FioJob,
}

fn parse_size(s: &str, line: usize) -> Result<u64, ParseFioError> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1024u64),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1024 * 1024),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|e| ParseFioError {
            line,
            message: format!("bad size '{s}': {e}"),
        })
}

/// The accumulated key/value state of a section.
#[derive(Debug, Clone)]
struct Section {
    rw: String,
    rwmixread: u8,
    bs: u64,
    size: u64,
    io_size: Option<u64>,
    offset: u64,
    numjobs: usize,
    iodepth: usize,
    // xtask-lint: allow(float-determinism) — workload knob parsed from fio syntax; arrivals are quantized to integer ns
    rate_iops: Option<f64>,
    randseed: u64,
    fsync: Option<u64>,
}

impl Default for Section {
    fn default() -> Section {
        Section {
            rw: "read".to_string(),
            rwmixread: 50,
            bs: 4096,
            size: 64 << 20,
            io_size: None,
            offset: 0,
            numjobs: 1,
            iodepth: 1,
            rate_iops: None,
            randseed: 0x10_15_b0_0c,
            fsync: None,
        }
    }
}

impl Section {
    fn apply(&mut self, key: &str, value: &str, line: usize) -> Result<(), ParseFioError> {
        let bad_num = |e: std::num::ParseIntError| ParseFioError {
            line,
            message: format!("bad {key}: {e}"),
        };
        match key {
            "rw" | "readwrite" => self.rw = value.to_string(),
            "rwmixread" => self.rwmixread = value.parse().map_err(bad_num)?,
            "bs" | "blocksize" => self.bs = parse_size(value, line)?,
            "size" => self.size = parse_size(value, line)?,
            "io_size" => self.io_size = Some(parse_size(value, line)?),
            "offset" => self.offset = parse_size(value, line)?,
            "numjobs" => self.numjobs = value.parse().map_err(bad_num)?,
            "iodepth" => self.iodepth = value.parse().map_err(bad_num)?,
            "rate_iops" => {
                self.rate_iops = Some(value.parse().map_err(|e| ParseFioError {
                    line,
                    message: format!("bad rate_iops: {e}"),
                })?);
            }
            "randseed" => self.randseed = value.parse().map_err(bad_num)?,
            "fsync" => self.fsync = Some(value.parse().map_err(bad_num)?),
            other => {
                return Err(ParseFioError {
                    line,
                    message: format!("unsupported key '{other}'"),
                })
            }
        }
        Ok(())
    }

    fn build(&self, line: usize) -> Result<FioJob, ParseFioError> {
        let pattern = match self.rw.as_str() {
            "read" => AccessPattern::SeqRead,
            "write" => AccessPattern::SeqWrite,
            "randread" => AccessPattern::RandRead,
            "randwrite" => AccessPattern::RandWrite,
            "randrw" | "rw" => AccessPattern::Mixed {
                read_percent: self.rwmixread,
            },
            other => {
                return Err(ParseFioError {
                    line,
                    message: format!("unsupported rw '{other}'"),
                })
            }
        };
        let volume = self.io_size.unwrap_or(self.size);
        let mut job = FioJob::new(pattern, self.bs)
            .threads(self.numjobs)
            .region(self.offset, self.size)
            .bytes_per_thread(volume / self.numjobs.max(1) as u64)
            .queue_depth(self.iodepth)
            .seed(self.randseed);
        if let Some(iops) = self.rate_iops {
            job = job.arrival_iops(iops);
        }
        if let Some(n) = self.fsync {
            if n > 0 {
                job = job.fsync_every(n);
            }
        }
        Ok(job)
    }
}

/// Parses a fio-style INI job file into named jobs, in file order.
/// `[global]` sections update the defaults inherited by later sections.
///
/// # Errors
///
/// Returns [`ParseFioError`] for syntax errors, unsupported keys or
/// unsupported values — loud failure beats silent divergence from fio.
pub fn parse_fio_jobs(text: &str) -> Result<Vec<NamedJob>, ParseFioError> {
    let mut global = Section::default();
    let mut jobs: Vec<NamedJob> = Vec::new();
    let mut current: Option<(String, Section, usize)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let body = raw.split(['#', ';']).next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        if let Some(name) = body.strip_prefix('[').and_then(|b| b.strip_suffix(']')) {
            // Finish the previous section.
            if let Some((n, s, l)) = current.take() {
                jobs.push(NamedJob {
                    name: n,
                    job: s.build(l)?,
                });
            }
            if name == "global" {
                current = None; // keys now update the global defaults
            } else {
                current = Some((name.to_string(), global.clone(), line));
            }
            continue;
        }
        let (key, value) = body.split_once('=').ok_or_else(|| ParseFioError {
            line,
            message: format!("expected key=value, found '{body}'"),
        })?;
        let (key, value) = (key.trim(), value.trim());
        match current.as_mut() {
            Some((_, section, _)) => section.apply(key, value, line)?,
            None => global.apply(key, value, line)?,
        }
    }
    if let Some((n, s, l)) = current.take() {
        jobs.push(NamedJob {
            name: n,
            job: s.build(l)?,
        });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_global_and_sections() {
        let text = "\
# the paper's Fig. 6(a) write job
[global]
bs=512k
size=256m

[seqwrite]
rw=write
numjobs=4

[randread]
rw=randread
bs=4k
iodepth=8
rate_iops=10000
";
        let jobs = parse_fio_jobs(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "seqwrite");
        assert_eq!(jobs[0].job.pattern, AccessPattern::SeqWrite);
        assert_eq!(jobs[0].job.block_bytes, 512 * 1024);
        assert_eq!(jobs[0].job.threads, 4);
        assert_eq!(jobs[0].job.bytes_per_thread, 64 << 20);
        assert_eq!(jobs[1].job.pattern, AccessPattern::RandRead);
        assert_eq!(jobs[1].job.block_bytes, 4096);
        assert_eq!(jobs[1].job.queue_depth, 8);
        assert_eq!(jobs[1].job.arrival_iops, Some(10_000.0));
    }

    #[test]
    fn randrw_uses_mix() {
        let jobs = parse_fio_jobs("[mix]\nrw=randrw\nrwmixread=70\n").unwrap();
        assert_eq!(
            jobs[0].job.pattern,
            AccessPattern::Mixed { read_percent: 70 }
        );
    }

    #[test]
    fn io_size_and_offset() {
        let jobs = parse_fio_jobs("[j]\nrw=read\noffset=16m\nsize=64m\nio_size=8m\n").unwrap();
        assert_eq!(jobs[0].job.region_offset, 16 << 20);
        assert_eq!(jobs[0].job.region_bytes, 64 << 20);
        assert_eq!(jobs[0].job.bytes_per_thread, 8 << 20);
    }

    #[test]
    fn errors_name_lines_and_keys() {
        let err = parse_fio_jobs("[j]\nnot a kv\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_fio_jobs("[j]\nioengine=libaio\n").unwrap_err();
        assert!(err.message.contains("unsupported key"));
        let err = parse_fio_jobs("[j]\nrw=trimwrite\n").unwrap_err();
        assert!(err.message.contains("unsupported rw"));
        let err = parse_fio_jobs("[j]\nbs=12q\n").unwrap_err();
        assert!(err.message.contains("bad size"));
    }

    #[test]
    fn comments_and_semicolons() {
        let jobs = parse_fio_jobs("; header\n[j] \nrw=read ; inline\nbs=8k # note\n");
        let jobs = jobs.unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(jobs[0].job.block_bytes, 8192);
    }
}
