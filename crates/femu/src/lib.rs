//! FEMU-like ZNS emulator baseline (paper §II-C, §IV-B).
//!
//! The paper identifies three modelling gaps that make FEMU's ZNS mode
//! deviate from consumer zoned flash storage, and this baseline reproduces
//! exactly those gaps:
//!
//! 1. **Virtualization latency** — FEMU runs inside QEMU/KVM; every I/O
//!    pays a host/guest switch of tens of microseconds with large
//!    fluctuations, which swamps flash read latencies. We model it as a
//!    seeded log-normal jitter added to every request.
//! 2. **No channel bandwidth** — "FEMU can not simulate the channel
//!    bandwidth of the UFS interface", which is why its write bandwidth
//!    comes out *above* real hardware. Channel transfer time is zero here.
//! 3. **No FTL internals in ZNS mode** — no L2P cache, no hybrid mapping,
//!    no heterogeneous media: zones map directly onto homogeneous
//!    superblocks and reads never pay mapping fetches.
//!
//! FEMU does support write buffers (Table I), so zone writes aggregate
//! into per-buffer superpages exactly as in ConZone — but a premature
//! eviction must pad out a whole programming unit on the normal media
//! because there is no SLC region to absorb sub-unit flushes.
//!
//! ```
//! use conzone_femu::FemuZns;
//! use conzone_types::{DeviceConfig, IoRequest, SimTime, StorageDevice};
//!
//! let mut dev = FemuZns::new(DeviceConfig::tiny_for_tests());
//! let c = dev.submit(SimTime::ZERO, &IoRequest::write(0, 64 * 1024))?;
//! assert!(c.latency().as_nanos() > 0);
//! # Ok::<(), conzone_types::DeviceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use bytes::Bytes;
use conzone_flash::FlashArray;
use conzone_sim::SimRng;
use conzone_types::{
    Completion, Counters, DeviceConfig, DeviceError, DeviceEvent, FlushKind, IoKind, IoRequest,
    LpnRange, Ppa, Probe, SimDuration, SimTime, StorageDevice, ZoneId, ZoneInfo, ZoneState,
    ZonedDevice, SLICE_BYTES,
};

/// Median host/guest switch latency per I/O (µ of the log-normal), ns.
/// "Tens of microseconds" per the paper's §IV-B discussion of KVM exits.
// xtask-lint: allow(float-determinism) — jitter model parameter, sampled through the seeded rng
const VM_JITTER_MEDIAN_NS: f64 = 25_000.0;
/// Log-normal sigma: large fluctuations that "are difficult to simulate
/// the read latency of flash, which is in the tens of microseconds".
// xtask-lint: allow(float-determinism) — jitter model parameter, sampled through the seeded rng
const VM_JITTER_SIGMA: f64 = 0.6;

#[derive(Debug, Clone)]
struct FemuZone {
    state: ZoneState,
    wp_slices: u64,
}

#[derive(Debug, Clone)]
struct FemuBuffer {
    owner: Option<ZoneId>,
    start_offset: u64,
    slices: u64,
    data: Vec<u8>,
}

/// The FEMU-like ZNS device model.
#[derive(Debug)]
pub struct FemuZns {
    cfg: DeviceConfig,
    flash: FlashArray,
    zones: Vec<FemuZone>,
    buffers: Vec<FemuBuffer>,
    counters: Counters,
    rng: SimRng,
    zone_size_slices: u64,
    probe: Probe,
    /// Payload store keyed by logical slice (zones map 1:1 to media, so
    /// no physical indirection is needed); populated only with
    /// `data_backing`.
    store: std::collections::BTreeMap<u64, Box<[u8]>>,
}

impl FemuZns {
    /// Builds the baseline. The configuration's SLC region, L2P cache,
    /// search strategy and channel bandwidth are ignored (that is the
    /// point of this model); the normal media, geometry and write-buffer
    /// count are honoured. Zones span whole superblocks without padding:
    /// FEMU exposes the raw superblock capacity.
    pub fn new(cfg: DeviceConfig) -> FemuZns {
        let zones = (0..cfg.zone_count())
            .map(|_| FemuZone {
                state: ZoneState::Empty,
                wp_slices: 0,
            })
            .collect();
        let buffers = (0..cfg.write_buffers)
            .map(|_| FemuBuffer {
                owner: None,
                start_offset: 0,
                slices: 0,
                data: Vec::new(),
            })
            .collect();
        let zone_size_slices = cfg.geometry.superblock_bytes() / SLICE_BYTES;
        let mut femu_cfg = cfg;
        // FEMU does not model the UFS channel, and its ZNS mode has no
        // fault plane either.
        femu_cfg.model_channel_bandwidth = false;
        femu_cfg.fault = conzone_types::FaultConfig::default();
        let seed = femu_cfg.seed;
        FemuZns {
            flash: FlashArray::new(&femu_cfg),
            zones,
            buffers,
            counters: Counters::new(),
            rng: SimRng::new(seed ^ FEMU_SEED_MIX),
            zone_size_slices,
            probe: Probe::disabled(),
            store: std::collections::BTreeMap::new(),
            cfg: femu_cfg,
        }
    }

    /// Attaches a trace probe; buffer flushes, conflicts, zone resets and
    /// media operations are emitted to it from now on.
    pub fn set_probe(&mut self, probe: Probe) {
        self.flash.set_probe(probe.clone());
        self.probe = probe;
    }

    fn jitter(&mut self) -> SimDuration {
        let ns = self
            .rng
            .lognormal(VM_JITTER_MEDIAN_NS.ln(), VM_JITTER_SIGMA);
        SimDuration::from_nanos(ns as u64)
    }

    fn unit_slices(&self) -> u64 {
        self.cfg.geometry.slices_per_unit() as u64
    }

    /// Canonical physical slice for a zone offset (zones map directly to
    /// superblocks; there is no indirection in FEMU's ZNS mode).
    fn slice_ppa(&self, zone: ZoneId, offset: u64) -> Ppa {
        let sb = self.cfg.geometry.zone_superblock(zone);
        self.cfg.geometry.superblock_slice(sb, offset)
    }

    /// Flushes a buffer: whole units program as-is; with `drain`, the
    /// sub-unit remainder is padded to a full programming unit (no SLC to
    /// absorb it — the padding is wasted media bandwidth).
    fn flush_buffer(
        &mut self,
        now: SimTime,
        buf: usize,
        drain: bool,
    ) -> Result<SimTime, DeviceError> {
        if self.buffers[buf].slices == 0 {
            if drain {
                self.buffers[buf].owner = None;
            }
            return Ok(now);
        }
        let zone = self.buffers[buf].owner.expect("non-empty buffer has owner");
        let unit = self.unit_slices();
        let start = self.buffers[buf].start_offset;
        let len = self.buffers[buf].slices;
        // The buffer may start mid-unit after a padded eviction; flush
        // whole-unit *spans* (each span charges one unit program — FEMU
        // does not track NAND block state, only timing).
        let end = start + len;
        let flush_end = if drain { end } else { (end / unit) * unit };
        let full = flush_end.saturating_sub(start);
        let mut t = now;
        let mut finish = t;
        let backed = self.cfg.data_backing;

        // FEMU emulates per-operation delays without a real FTL: each unit
        // charges one transfer-free program on its canonical chip (FEMU
        // ACKs after the emulated latency completes), and block state is
        // not tracked. Payloads go into the device's own slice store.
        let zs = self.zone_size_slices;
        let program =
            |dev: &mut Self, t: SimTime, off: u64, bytes: u64, data: Option<&[u8]>| -> SimTime {
                let first = dev.slice_ppa(zone, off);
                let parts = dev.cfg.geometry.decode_ppa(first);
                let cell = dev.cfg.normal_cell;
                let (_buffer_free, fin) = dev.flash.timed_program(t, parts.chip, cell, bytes, 1);
                if let Some(d) = data {
                    for (i, chunk) in d.chunks_exact(SLICE_BYTES as usize).enumerate() {
                        let lpn = zone.raw() * zs + off + i as u64;
                        dev.store.insert(lpn, chunk.into());
                    }
                }
                fin
            };

        // One unit program per unit index the flushed span overlaps; a
        // trailing partial span on drain is the padded premature flush.
        if flush_end > start {
            let first_unit = start / unit;
            let last_unit = (flush_end - 1) / unit;
            for u in first_unit..=last_unit {
                let span_start = (u * unit).max(start);
                let span_end = ((u + 1) * unit).min(flush_end);
                let data = if backed {
                    let at = ((span_start - start) * SLICE_BYTES) as usize;
                    let len_b = ((span_end - span_start) * SLICE_BYTES) as usize;
                    let mut v = self.buffers[buf].data[at..at + len_b].to_vec();
                    v.resize((unit * SLICE_BYTES) as usize, 0);
                    Some(v)
                } else {
                    None
                };
                let end_t = program(self, t, span_start, unit * SLICE_BYTES, data.as_deref());
                finish = finish.max(end_t);
                let kind = if drain && span_end - span_start < unit {
                    self.counters.premature_flushes += 1;
                    FlushKind::Premature
                } else {
                    self.counters.full_flushes += 1;
                    FlushKind::Full
                };
                self.probe.emit(
                    t,
                    DeviceEvent::BufferFlush {
                        zone,
                        kind,
                        slices: span_end - span_start,
                    },
                );
            }
        }
        t = finish;

        // Advance the buffer.
        let consumed = if drain { len } else { full };
        self.buffers[buf].start_offset += consumed;
        self.buffers[buf].slices -= consumed;
        if backed {
            let bytes = (consumed * SLICE_BYTES) as usize;
            let cut = bytes.min(self.buffers[buf].data.len());
            let tail = self.buffers[buf].data.split_off(cut);
            self.buffers[buf].data = tail;
        }
        if drain {
            self.buffers[buf].owner = None;
            self.buffers[buf].slices = 0;
            self.buffers[buf].data.clear();
        }
        Ok(t)
    }

    fn write_range(
        &mut self,
        now: SimTime,
        range: LpnRange,
        payload: Option<&[u8]>,
    ) -> Result<SimTime, DeviceError> {
        let zs = self.zone_size_slices;
        let zone = ZoneId(range.start.raw() / zs);
        let offset = range.start.raw() % zs;
        if (zone.raw() as usize) >= self.zones.len() {
            return Err(DeviceError::OutOfRange {
                offset: range.start.byte_offset(),
                capacity: self.capacity_bytes(),
            });
        }
        if offset + range.count > zs {
            return Err(DeviceError::ZoneBoundary { zone });
        }
        let zidx = zone.raw() as usize;
        if self.zones[zidx].state == ZoneState::Full {
            return Err(DeviceError::ZoneFull { zone });
        }
        // Closed zones reopen implicitly on write.
        if offset != self.zones[zidx].wp_slices {
            return Err(DeviceError::NotWritePointer {
                zone,
                expected: conzone_types::Lpn(zone.raw() * zs + self.zones[zidx].wp_slices),
                got: range.start,
            });
        }
        self.zones[zidx].state = ZoneState::Open;

        let buf = zone.raw() as usize % self.buffers.len();
        let mut t = now;
        let conflicting = match self.buffers[buf].owner {
            Some(o) => o != zone && self.buffers[buf].slices > 0,
            None => false,
        };
        if conflicting {
            self.counters.buffer_conflicts += 1;
            self.probe.emit(t, DeviceEvent::BufferConflict { zone });
            t = self.flush_buffer(t, buf, true)?;
        }
        if self.buffers[buf].owner != Some(zone) {
            self.buffers[buf].owner = Some(zone);
            self.buffers[buf].start_offset = offset;
            self.buffers[buf].slices = 0;
            self.buffers[buf].data.clear();
        }

        let capacity = self.cfg.geometry.slices_per_superpage();
        let mut remaining = range.count;
        let mut pay_off = 0usize;
        while remaining > 0 {
            let room = capacity - self.buffers[buf].slices;
            let take = remaining.min(room);
            if self.cfg.data_backing {
                match payload {
                    Some(p) => self.buffers[buf]
                        .data
                        .extend_from_slice(&p[pay_off..pay_off + (take * SLICE_BYTES) as usize]),
                    None => {
                        let new_len = self.buffers[buf].data.len() + (take * SLICE_BYTES) as usize;
                        self.buffers[buf].data.resize(new_len, 0);
                    }
                }
            }
            self.buffers[buf].slices += take;
            self.zones[zidx].wp_slices += take;
            pay_off += (take * SLICE_BYTES) as usize;
            remaining -= take;
            if self.buffers[buf].slices == capacity {
                t = self.flush_buffer(t, buf, false)?;
            }
        }
        if self.zones[zidx].wp_slices == zs {
            t = self.flush_buffer(t, buf, true)?;
            self.zones[zidx].state = ZoneState::Full;
        }
        let jitter = self.jitter();
        Ok(t + self.cfg.host_overhead + jitter)
    }

    fn read_range(
        &mut self,
        now: SimTime,
        range: LpnRange,
    ) -> Result<(SimTime, Option<Vec<u8>>), DeviceError> {
        let zs = self.zone_size_slices;
        let mut ppas = Vec::new();
        let mut buffered: Vec<(usize, u64)> = Vec::new(); // (slot index, byte at)
        let mut slots: Vec<Option<usize>> = Vec::with_capacity(range.count as usize);
        for lpn in range.iter() {
            let zone = ZoneId(lpn.raw() / zs);
            let offset = lpn.raw() % zs;
            let zidx = zone.raw() as usize;
            if zidx >= self.zones.len() || offset >= self.zones[zidx].wp_slices {
                return Err(DeviceError::UnwrittenRead { lpn });
            }
            let buf = zone.raw() as usize % self.buffers.len();
            let b = &self.buffers[buf];
            if b.owner == Some(zone)
                && offset >= b.start_offset
                && offset < b.start_offset + b.slices
            {
                buffered.push((slots.len(), (offset - b.start_offset) * SLICE_BYTES));
                slots.push(None);
                continue;
            }
            slots.push(Some(ppas.len()));
            ppas.push(self.slice_ppa(zone, offset));
        }
        let mut finish = now;
        if !ppas.is_empty() {
            // Group into page senses (deterministic first-appearance order).
            let mut order: Vec<(conzone_types::ChipId, u64)> = Vec::new();
            let mut seen = std::collections::BTreeMap::new();
            for &ppa in &ppas {
                let parts = self.cfg.geometry.decode_ppa(ppa);
                let key = (parts.chip.raw(), parts.block, parts.page);
                match seen.get(&key) {
                    Some(&i) => {
                        let entry: &mut (conzone_types::ChipId, u64) = &mut order[i];
                        entry.1 += SLICE_BYTES;
                    }
                    None => {
                        seen.insert(key, order.len());
                        order.push((parts.chip, SLICE_BYTES));
                    }
                }
            }
            let cell = self.cfg.normal_cell;
            // Every emulated page operation crosses the KVM host/guest
            // boundary, so the switching jitter accumulates per page — this
            // is what buries flash-scale read latencies (paper §IV-B).
            let mut exit_cost = SimDuration::ZERO;
            for (chip, bytes) in order {
                let r = self.flash.timed_page_read(now, chip, cell, bytes);
                finish = finish.max(r.end);
                exit_cost += self.jitter();
            }
            finish += exit_cost;
        }
        let data = if self.cfg.data_backing {
            let mut v = Vec::with_capacity((range.count * SLICE_BYTES) as usize);
            for (i, slot) in slots.iter().enumerate() {
                match slot {
                    Some(_) => {
                        let lpn = range.start.raw() + i as u64;
                        match self.store.get(&lpn) {
                            Some(d) => v.extend_from_slice(d),
                            None => v.resize(v.len() + SLICE_BYTES as usize, 0),
                        }
                    }
                    None => {
                        let (_, at) = buffered
                            .iter()
                            .find(|(s, _)| *s == i)
                            .expect("buffered slot recorded");
                        // Identify the buffer again via the lpn's zone.
                        let lpn = range.start.raw() + i as u64;
                        let zone = lpn / zs;
                        let buf = zone as usize % self.buffers.len();
                        let b = &self.buffers[buf];
                        let at = *at as usize;
                        if b.data.len() >= at + SLICE_BYTES as usize {
                            v.extend_from_slice(&b.data[at..at + SLICE_BYTES as usize]);
                        } else {
                            v.resize(v.len() + SLICE_BYTES as usize, 0);
                        }
                    }
                }
            }
            Some(v)
        } else {
            None
        };
        // Buffer-served reads still pay one switch.
        let jitter = if ppas.is_empty() {
            self.jitter()
        } else {
            SimDuration::ZERO
        };
        Ok((finish + self.cfg.host_overhead + jitter, data))
    }
}

/// Keeps the FEMU RNG stream distinct from other seeded components.
const FEMU_SEED_MIX: u64 = 0xFE50_1D5E_ED00_0001;

impl StorageDevice for FemuZns {
    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn capacity_bytes(&self) -> u64 {
        self.zone_size_slices * SLICE_BYTES * self.zones.len() as u64
    }

    fn submit(&mut self, now: SimTime, request: &IoRequest) -> Result<Completion, DeviceError> {
        request.validate()?;
        if request.offset + request.len > self.capacity_bytes() {
            return Err(DeviceError::OutOfRange {
                offset: request.offset,
                capacity: self.capacity_bytes(),
            });
        }
        let range = LpnRange::covering_bytes(request.offset, request.len)
            .expect("validated request is non-empty");
        match request.kind {
            IoKind::Write => {
                self.counters.host_write_ops += 1;
                self.counters.host_write_bytes += request.len;
                let finished = self.write_range(now, range, request.data.as_deref())?;
                Ok(Completion {
                    submitted: now,
                    finished,
                    data: None,
                    assigned_offset: None,
                })
            }
            IoKind::Append => {
                self.counters.host_write_ops += 1;
                self.counters.host_write_bytes += request.len;
                let zs = self.zone_size_slices;
                let zone = range.start.raw() / zs;
                let wp = self
                    .zones
                    .get(zone as usize)
                    .ok_or(DeviceError::OutOfRange {
                        offset: request.offset,
                        capacity: self.capacity_bytes(),
                    })?
                    .wp_slices;
                if wp + range.count > zs {
                    return Err(DeviceError::ZoneBoundary {
                        zone: conzone_types::ZoneId(zone),
                    });
                }
                let landed = LpnRange::new(conzone_types::Lpn(zone * zs + wp), range.count);
                let assigned = landed.start.byte_offset();
                let finished = self.write_range(now, landed, request.data.as_deref())?;
                Ok(Completion {
                    submitted: now,
                    finished,
                    data: None,
                    assigned_offset: Some(assigned),
                })
            }
            IoKind::Read => {
                self.counters.host_read_ops += 1;
                self.counters.host_read_bytes += request.len;
                let (finished, data) = self.read_range(now, range)?;
                Ok(Completion {
                    submitted: now,
                    finished,
                    data: data.map(Bytes::from),
                    assigned_offset: None,
                })
            }
        }
    }

    fn flush(&mut self, now: SimTime) -> Result<Completion, DeviceError> {
        let mut t = now;
        for buf in 0..self.buffers.len() {
            t = self.flush_buffer(t, buf, true)?;
        }
        let jitter = self.jitter();
        Ok(Completion {
            submitted: now,
            finished: t + self.cfg.host_overhead + jitter,
            data: None,
            assigned_offset: None,
        })
    }

    fn counters(&self) -> Counters {
        let mut c = self.counters;
        let stats = self.flash.stats();
        c.flash_program_bytes_slc = stats.program_bytes_slc;
        c.flash_program_bytes_tlc = stats.program_bytes_tlc;
        c.flash_program_bytes_qlc = stats.program_bytes_qlc;
        c.flash_data_reads = stats.page_reads;
        c.erases_slc = stats.erases_slc;
        c.erases_normal = stats.erases_normal;
        c
    }

    fn model_name(&self) -> &'static str {
        "femu"
    }
}

impl ZonedDevice for FemuZns {
    fn zone_count(&self) -> usize {
        self.zones.len()
    }

    fn zone_size(&self) -> u64 {
        self.zone_size_slices * SLICE_BYTES
    }

    fn zone_info(&self, zone: ZoneId) -> Result<ZoneInfo, DeviceError> {
        let z = self
            .zones
            .get(zone.raw() as usize)
            .ok_or(DeviceError::OutOfRange {
                offset: zone.raw() * self.zone_size(),
                capacity: self.capacity_bytes(),
            })?;
        Ok(ZoneInfo {
            id: zone,
            state: z.state,
            write_pointer: z.wp_slices * SLICE_BYTES,
            capacity: self.zone_size(),
            size: self.zone_size(),
            start: zone.raw() * self.zone_size(),
        })
    }

    fn reset_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError> {
        let zidx = zone.raw() as usize;
        if zidx >= self.zones.len() {
            return Err(DeviceError::OutOfRange {
                offset: zone.raw() * self.zone_size(),
                capacity: self.capacity_bytes(),
            });
        }
        let buf = zone.raw() as usize % self.buffers.len();
        if self.buffers[buf].owner == Some(zone) {
            self.buffers[buf].owner = None;
            self.buffers[buf].slices = 0;
            self.buffers[buf].data.clear();
        }
        let sb = self.cfg.geometry.zone_superblock(zone);
        let mut t = now;
        if self.zones[zidx].wp_slices > 0 {
            t = self.flash.erase_superblock(now, sb);
            let zs = self.zone_size_slices;
            for lpn in zone.raw() * zs..(zone.raw() + 1) * zs {
                self.store.remove(&lpn);
            }
        }
        self.zones[zidx].state = ZoneState::Empty;
        self.zones[zidx].wp_slices = 0;
        self.counters.zone_resets += 1;
        self.probe.emit(t, DeviceEvent::ZoneReset { zone });
        let jitter = self.jitter();
        Ok(Completion {
            submitted: now,
            finished: t + jitter,
            data: None,
            assigned_offset: None,
        })
    }

    fn open_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError> {
        let zidx = zone.raw() as usize;
        let capacity = self.zone_size_slices * SLICE_BYTES * self.zones.len() as u64;
        let z = self.zones.get_mut(zidx).ok_or(DeviceError::OutOfRange {
            offset: zone.raw() * capacity,
            capacity,
        })?;
        match z.state {
            ZoneState::Full => return Err(DeviceError::ZoneFull { zone }),
            _ => z.state = ZoneState::Open,
        }
        let jitter = self.jitter();
        Ok(Completion {
            submitted: now,
            finished: now + jitter,
            data: None,
            assigned_offset: None,
        })
    }

    fn close_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError> {
        let zidx = zone.raw() as usize;
        if zidx >= self.zones.len() || self.zones[zidx].state != ZoneState::Open {
            return Err(DeviceError::ZoneNotWritable { zone });
        }
        let buf = zone.raw() as usize % self.buffers.len();
        let mut t = now;
        if self.buffers[buf].owner == Some(zone) {
            t = self.flush_buffer(t, buf, true)?;
        }
        self.zones[zidx].state = ZoneState::Closed;
        let jitter = self.jitter();
        Ok(Completion {
            submitted: now,
            finished: t + jitter,
            data: None,
            assigned_offset: None,
        })
    }

    fn finish_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError> {
        let zidx = zone.raw() as usize;
        let capacity = self.zone_size_slices * SLICE_BYTES * self.zones.len() as u64;
        if zidx >= self.zones.len() {
            return Err(DeviceError::OutOfRange {
                offset: zone.raw() * capacity,
                capacity,
            });
        }
        let mut t = now;
        if self.zones[zidx].state != ZoneState::Full {
            let buf = zone.raw() as usize % self.buffers.len();
            if self.buffers[buf].owner == Some(zone) {
                t = self.flush_buffer(t, buf, true)?;
            }
            self.zones[zidx].state = ZoneState::Full;
        }
        let jitter = self.jitter();
        Ok(Completion {
            submitted: now,
            finished: t + jitter,
            data: None,
            assigned_offset: None,
        })
    }
}

impl conzone_types::PowerCycle for FemuZns {
    fn power_cut(&mut self, _now: SimTime) -> Result<u64, DeviceError> {
        Err(DeviceError::Unsupported(
            "femu baseline does not model power loss".to_string(),
        ))
    }

    fn remount(&mut self, _now: SimTime) -> Result<conzone_types::RecoveryReport, DeviceError> {
        Err(DeviceError::Unsupported(
            "femu baseline does not model power loss".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> FemuZns {
        FemuZns::new(DeviceConfig::tiny_for_tests())
    }

    fn patt(len: usize, seed: u8) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| (i as u8).wrapping_mul(17).wrapping_add(seed))
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let mut d = dev();
        let data = patt(128 * 1024, 1);
        let c = d
            .submit(SimTime::ZERO, &IoRequest::write_data(0, data.clone()))
            .unwrap();
        let r = d
            .submit(c.finished, &IoRequest::read(0, 128 * 1024))
            .unwrap();
        assert_eq!(r.data.unwrap(), data);
    }

    #[test]
    fn jitter_dominates_latency() {
        let mut d = dev();
        let zone = d.zone_size();
        let c = d
            .submit(
                SimTime::ZERO,
                &IoRequest::write_data(0, patt(zone as usize, 2)),
            )
            .unwrap();
        // Reads pay tens-of-microseconds jitter on top of the flash read.
        let mut total = SimDuration::ZERO;
        let mut t = c.finished;
        for i in 0..50u64 {
            let r = d.submit(t, &IoRequest::read(i * 4096, 4096)).unwrap();
            total += r.latency();
            t = r.finished;
        }
        let mean_us = total.as_micros_f64() / 50.0;
        assert!(
            mean_us > 40.0,
            "vm jitter should push 4 KiB reads past the bare 32 us TLC read; got {mean_us:.1}"
        );
    }

    #[test]
    fn no_channel_bandwidth_model() {
        let d = dev();
        assert!(!d.cfg.model_channel_bandwidth);
    }

    #[test]
    fn premature_eviction_pads_units() {
        let mut d = dev();
        let mut t = SimTime::ZERO;
        let zone = d.zone_size();
        // Conflicting zones 0 and 2 (shared buffer), 8 KiB each.
        t = d
            .submit(t, &IoRequest::write_data(0, patt(8192, 3)))
            .unwrap()
            .finished;
        t = d
            .submit(t, &IoRequest::write_data(2 * zone, patt(8192, 4)))
            .unwrap()
            .finished;
        let _ = t;
        let c = d.counters();
        assert_eq!(c.buffer_conflicts, 1);
        assert_eq!(c.premature_flushes, 1);
        // The 8 KiB eviction programmed a whole 64 KiB unit.
        assert_eq!(c.flash_program_bytes_tlc, 64 * 1024);
        assert_eq!(c.flash_program_bytes_slc, 0, "no SLC in FEMU");
    }

    #[test]
    fn write_pointer_enforced_and_reset_clears() {
        let mut d = dev();
        let c = d
            .submit(SimTime::ZERO, &IoRequest::write_data(0, patt(4096, 5)))
            .unwrap();
        assert!(matches!(
            d.submit(c.finished, &IoRequest::write_data(65536, patt(4096, 6))),
            Err(DeviceError::NotWritePointer { .. })
        ));
        let r = d.reset_zone(c.finished, ZoneId(0)).unwrap();
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Empty);
        d.submit(r.finished, &IoRequest::write_data(0, patt(4096, 7)))
            .unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut d = dev();
            let mut t = SimTime::ZERO;
            for i in 0..10u64 {
                t = d
                    .submit(t, &IoRequest::write_data(i * 65536, patt(65536, i as u8)))
                    .unwrap()
                    .finished;
            }
            t
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod lifecycle_tests {
    use super::*;

    #[test]
    fn femu_zone_lifecycle() {
        let mut d = FemuZns::new(DeviceConfig::tiny_for_tests());
        let mut t = SimTime::ZERO;
        t = d.open_zone(t, ZoneId(0)).unwrap().finished;
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Open);
        // Sub-unit write, then close: FEMU pads the eviction to a full
        // unit on the normal media (no SLC to absorb it).
        t = d.submit(t, &IoRequest::write(0, 8192)).unwrap().finished;
        let before = d.counters();
        t = d.close_zone(t, ZoneId(0)).unwrap().finished;
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Closed);
        let after = d.counters();
        assert_eq!(after.premature_flushes, before.premature_flushes + 1);
        assert!(after.flash_program_bytes_tlc >= before.flash_program_bytes_tlc + 64 * 1024);
        // Reopen implicitly by writing at the pointer; then finish.
        t = d.submit(t, &IoRequest::write(8192, 4096)).unwrap().finished;
        t = d.finish_zone(t, ZoneId(0)).unwrap().finished;
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Full);
        assert!(matches!(
            d.submit(t, &IoRequest::write(12288, 4096)),
            Err(DeviceError::ZoneFull { .. })
        ));
        // Close of a non-open zone errors; open of a full zone errors.
        assert!(matches!(
            d.close_zone(t, ZoneId(1)),
            Err(DeviceError::ZoneNotWritable { .. })
        ));
        assert!(matches!(
            d.open_zone(t, ZoneId(0)),
            Err(DeviceError::ZoneFull { .. })
        ));
    }
}

#[cfg(test)]
mod more_femu_tests {
    use super::*;

    #[test]
    fn buffered_tail_readable_before_flush() {
        let mut d = FemuZns::new(DeviceConfig::tiny_for_tests());
        let data = Bytes::from(vec![0x42u8; 8192]);
        let c = d
            .submit(SimTime::ZERO, &IoRequest::write_data(0, data.clone()))
            .unwrap();
        assert_eq!(d.counters().flash_program_bytes(), 0, "still buffered");
        let r = d.submit(c.finished, &IoRequest::read(0, 8192)).unwrap();
        assert_eq!(r.data.unwrap(), data);
    }

    #[test]
    fn flush_drains_every_buffer() {
        let mut d = FemuZns::new(DeviceConfig::tiny_for_tests());
        let mut t = SimTime::ZERO;
        let zone = d.zone_size();
        // Two zones on different buffers, both with sub-unit tails.
        t = d.submit(t, &IoRequest::write(0, 8192)).unwrap().finished;
        t = d
            .submit(t, &IoRequest::write(zone, 12288))
            .unwrap()
            .finished;
        assert_eq!(d.counters().flash_program_bytes(), 0);
        let f = d.flush(t).unwrap();
        let c = d.counters();
        // Both tails padded to whole 64 KiB units.
        assert_eq!(c.flash_program_bytes_tlc, 2 * 64 * 1024);
        assert_eq!(c.premature_flushes, 2);
        // Data survives the padding.
        let r = d.submit(f.finished, &IoRequest::read(zone, 4096)).unwrap();
        assert!(r.finished > f.finished);
    }

    #[test]
    fn jitter_streams_are_independent_of_payload() {
        // The RNG draws depend only on the op sequence, not payloads.
        let run = |byte: u8| {
            let mut d = FemuZns::new(DeviceConfig::tiny_for_tests());
            let data = Bytes::from(vec![byte; 65536]);
            let c = d
                .submit(SimTime::ZERO, &IoRequest::write_data(0, data))
                .unwrap();
            d.submit(c.finished, &IoRequest::read(0, 4096))
                .unwrap()
                .finished
        };
        assert_eq!(run(1), run(2));
    }
}
