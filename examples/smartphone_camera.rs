//! A smartphone camera burst: the workload the paper's introduction
//! motivates — large sequential media writes racing small synchronous
//! metadata updates on limited write buffers.
//!
//! A burst of 12 MP photos streams ~8 MiB files into a "media" zone while
//! the gallery database issues small synchronous writes into a "metadata"
//! zone. When both zones share one write buffer (same parity), every
//! database commit evicts partially aggregated photo data into SLC;
//! splitting them across buffers avoids the churn. Afterwards, the user
//! scrolls the gallery: random thumbnail reads exercise the hybrid
//! mapping.
//!
//! ```sh
//! cargo run --release --example smartphone_camera
//! ```

use conzone::types::{Counters, DeviceConfig, IoRequest, SimTime, StorageDevice};
use conzone::ConZone;

const PHOTO_BYTES: u64 = 8 * 1024 * 1024;
const DB_COMMIT_BYTES: u64 = 16 * 1024;
const PHOTOS: u64 = 20;

/// Interleaves photo writes with database commits; returns the counters
/// delta and elapsed time.
fn shoot_burst(first_media_zone: u64, meta_zone: u64) -> (Counters, f64, f64) {
    let mut dev = ConZone::new(DeviceConfig::paper_evaluation());
    let zone = dev.config().zone_size_bytes();
    let before = dev.counters();
    let mut t = SimTime::ZERO;
    // The media stream fills even zones one after another (all mapping to
    // write buffer 0), skipping the metadata zone.
    let mut media_zones = (first_media_zone..).step_by(2).filter(|z| *z != meta_zone);
    let mut media_zone = media_zones.next().expect("zones available");
    let mut media_in_zone = 0u64;
    let mut meta_off = meta_zone * zone;
    let chunk = 512 * 1024u64;

    for _photo in 0..PHOTOS {
        // Stream the photo in 512 KiB chunks…
        let mut streamed = 0;
        while streamed < PHOTO_BYTES {
            if media_in_zone == zone {
                media_zone = media_zones.next().expect("zones available");
                media_in_zone = 0;
            }
            let offset = media_zone * zone + media_in_zone;
            t = dev
                .submit(t, &IoRequest::write(offset, chunk))
                .expect("photo write")
                .finished;
            media_in_zone += chunk;
            streamed += chunk;
            // …and the gallery database commits after every few chunks.
            if streamed % (2 * 1024 * 1024) == 0 {
                t = dev
                    .submit(t, &IoRequest::write(meta_off, DB_COMMIT_BYTES))
                    .expect("db commit")
                    .finished;
                meta_off += DB_COMMIT_BYTES;
            }
        }
    }
    let elapsed = t.as_secs_f64();
    let mib = (PHOTOS * PHOTO_BYTES) as f64 / (1024.0 * 1024.0);
    (dev.counters().since(&before), mib / elapsed, elapsed)
}

fn main() {
    println!(
        "camera burst: {PHOTOS} photos of {} MiB each\n",
        PHOTO_BYTES >> 20
    );

    // Media zone 0 and metadata zone 2: both map to write buffer 0.
    let (shared, bw_shared, t_shared) = shoot_burst(0, 2);
    // Media zone 0 and metadata zone 1: separate buffers.
    let (split, bw_split, t_split) = shoot_burst(0, 1);

    println!("                         shared buffer   split buffers");
    println!(
        "burst bandwidth (MiB/s)  {:>14.0}   {:>13.0}",
        bw_shared, bw_split
    );
    println!(
        "burst duration (s)       {:>14.3}   {:>13.3}",
        t_shared, t_split
    );
    println!(
        "buffer conflicts         {:>14}   {:>13}",
        shared.buffer_conflicts, split.buffer_conflicts
    );
    println!(
        "premature flushes        {:>14}   {:>13}",
        shared.premature_flushes, split.premature_flushes
    );
    println!(
        "SLC bytes (MiB)          {:>14.1}   {:>13.1}",
        shared.flash_program_bytes_slc as f64 / (1024.0 * 1024.0),
        split.flash_program_bytes_slc as f64 / (1024.0 * 1024.0)
    );
    println!(
        "write amplification      {:>14.3}   {:>13.3}",
        shared.write_amplification(),
        split.write_amplification()
    );
    println!(
        "\nthe gallery database's sync commits evict half-built photo\n\
         superpages when the zones share a buffer — exactly the paper's\n\
         §II-B contention scenario. placing metadata on an odd zone (its\n\
         own buffer) removes the churn."
    );
}
