//! Hardware design-space exploration: how many write buffers and how much
//! SLC does a consumer zoned device need?
//!
//! This is the kind of internal-hardware question ConZone exists to answer
//! (paper §I: "explore the internal architecture and management
//! strategies"). We sweep the two sizing knobs against an F2FS-like
//! six-writer workload and print the resulting bandwidth / write
//! amplification surface.
//!
//! ```sh
//! cargo run --release --example buffer_tuning
//! ```

use conzone::host::{run_job, AccessPattern, FioJob};
use conzone::types::{DeviceConfig, Geometry};
use conzone::ConZone;

/// Six interleaved zone writers with 48 KiB sync granularity (the §II-B
/// worst case) against a given buffer count and SLC region size.
fn evaluate(buffers: usize, slc_blocks: usize) -> (f64, f64) {
    let mut geometry = Geometry::consumer_1p5gb();
    geometry.slc_blocks_per_chip = slc_blocks;
    let cfg = DeviceConfig::builder(geometry)
        .write_buffers(buffers)
        .build()
        .expect("sweep config");
    let zone = cfg.zone_size_bytes();
    let mut dev = ConZone::new(cfg);
    let job = FioJob::new(AccessPattern::SeqWrite, 48 * 1024)
        .zone_bytes(zone)
        .threads(6)
        .with_thread_zones((0..6u64).map(|z| vec![z]).collect())
        .bytes_per_thread(zone / 2);
    let r = run_job(&mut dev, &job).expect("sweep run");
    (r.bandwidth_mibs(), r.waf())
}

fn main() {
    let buffer_counts = [1usize, 2, 3, 4, 6];
    let slc_sizes = [4usize, 8, 16];

    println!("six F2FS-style writers, 48 KiB sync writes\n");
    println!("bandwidth MiB/s (write amplification)\n");
    print!("{:>10}", "buffers");
    for slc in slc_sizes {
        print!("{:>20}", format!("slc={slc} blk/chip"));
    }
    println!();
    let mut best = (0usize, 0usize, 0.0f64);
    for buffers in buffer_counts {
        print!("{buffers:>10}");
        for slc in slc_sizes {
            let (bw, waf) = evaluate(buffers, slc);
            print!("{:>20}", format!("{bw:.0} ({waf:.2})"));
            if bw > best.2 {
                best = (buffers, slc, bw);
            }
        }
        println!();
    }
    println!(
        "\nbest point: {} buffers with {} SLC blocks/chip at {:.0} MiB/s.\n\
         the buffer count dominates: with six buffers the six logs never\n\
         contend, so the SLC region barely matters; below that, SLC\n\
         absorbs the churn but costs write amplification — the trade-off\n\
         the paper's conclusion says it is working on.",
        best.0, best.1, best.2
    );
}
