//! Quickstart: build a ConZone device, write a zone, read it back, reset
//! it, and inspect the internal counters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use conzone::host::{run_job, AccessPattern, FioJob};
use conzone::types::{DeviceConfig, StorageDevice, ZoneId, ZonedDevice};
use conzone::ConZone;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §IV-A evaluation configuration: ~1.5 GB of TLC flash,
    // 2 channels × 2 chips, two 384 KiB write buffers, 12 KiB L2P cache.
    let mut device = ConZone::new(DeviceConfig::paper_evaluation());
    println!(
        "device: {} zones of {} MiB ({} MiB logical capacity)",
        device.zone_count(),
        device.zone_size() >> 20,
        device.capacity_bytes() >> 20,
    );

    // Fill the first four zones with 512 KiB sequential writes.
    let zone = device.zone_size();
    let write = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
        .zone_bytes(zone)
        .region(0, 4 * zone)
        .bytes_per_thread(4 * zone);
    let w = run_job(&mut device, &write)?;
    println!(
        "wrote {} MiB at {:.0} MiB/s (mean latency {})",
        w.bytes >> 20,
        w.bandwidth_mibs(),
        w.latency.mean,
    );

    // Random 4 KiB reads over the written range.
    let read = FioJob::new(AccessPattern::RandRead, 4096)
        .region(0, 4 * zone)
        .ops_per_thread(10_000)
        .bytes_per_thread(u64::MAX)
        .start_at(w.finished);
    let r = run_job(&mut device, &read)?;
    println!(
        "random reads: {:.1} KIOPS, p99 {}, p99.9 {}",
        r.kiops(),
        r.latency.p99,
        r.latency.p999,
    );

    // The zone abstraction at work: hybrid mapping aggregated the filled
    // zones, so the tiny L2P cache absorbs every lookup.
    let c = device.counters();
    println!(
        "l2p: {} zone hits, {} chunk hits, {} page hits, {} misses",
        c.l2p_hits_zone, c.l2p_hits_chunk, c.l2p_hits_page, c.l2p_misses,
    );
    println!(
        "flash: {} MiB programmed (waf {:.3}), {} mapping fetches",
        c.flash_program_bytes() >> 20,
        c.write_amplification(),
        c.flash_mapping_reads,
    );

    // Reset a zone and confirm it is writable again.
    let reset = device.reset_zone(r.finished, ZoneId(0))?;
    println!(
        "zone 0 reset in {}; state is now {:?}",
        reset.latency(),
        device.zone_info(ZoneId(0))?.state,
    );
    Ok(())
}
