//! A log-structured key-value store on the full stack: application →
//! F2FS-like file system → ConZone device.
//!
//! The paper's pitch is that "applications and file systems can regard
//! ConZone as a common storage device" (§I). This example builds a small
//! KV store whose values live in F2FS-lite files, runs a zipf-skewed
//! GET/PUT mix, and reports how application-level operations decompose
//! into file-system and device behaviour.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use std::collections::HashMap;

use conzone::host::{F2fsLite, Temperature};
use conzone::sim::{LatencyHistogram, SimRng};
use conzone::types::{DeviceConfig, Geometry, IoRequest, SimTime, StorageDevice};
use conzone::ConZone;

/// Values are stored in per-key file blocks: key → (file, block index).
struct KvStore {
    fs: F2fsLite,
    index: HashMap<u64, (u64, u64)>,
    /// Blocks per value.
    value_blocks: u64,
    next_file: u64,
    blocks_in_file: u64,
    /// Values per file before rotating to a fresh one.
    file_capacity: u64,
}

impl KvStore {
    fn new(dev: &ConZone) -> KvStore {
        KvStore {
            fs: F2fsLite::with_conventional_metadata(dev, 2),
            index: HashMap::new(),
            value_blocks: 4, // 16 KiB values
            next_file: 0,
            blocks_in_file: 0,
            file_capacity: 512, // 8 MiB files
        }
    }

    fn put(
        &mut self,
        dev: &mut ConZone,
        t: SimTime,
        key: u64,
        hot: bool,
    ) -> Result<SimTime, conzone::types::DeviceError> {
        let temp = if hot {
            Temperature::Hot
        } else {
            Temperature::Warm
        };
        // Updates rewrite the key's existing file range (the FS stales the
        // old blocks and appends new ones — log-structured semantics);
        // fresh keys take the next slot of the current file.
        let (file, block) = match self.index.get(&key) {
            Some(&slot) => slot,
            None => {
                if self.blocks_in_file + self.value_blocks > self.file_capacity * self.value_blocks
                {
                    self.next_file += 1;
                    self.blocks_in_file = 0;
                }
                let slot = (self.next_file, self.blocks_in_file);
                self.blocks_in_file += self.value_blocks;
                slot
            }
        };
        let t = self
            .fs
            .write_file(dev, t, file, block, self.value_blocks, temp)?;
        self.index.insert(key, (file, block));
        Ok(t)
    }

    fn get(
        &mut self,
        dev: &mut ConZone,
        t: SimTime,
        key: u64,
    ) -> Result<Option<SimTime>, conzone::types::DeviceError> {
        let Some(&(file, block)) = self.index.get(&key) else {
            return Ok(None);
        };
        let mut t = t;
        for b in block..block + self.value_blocks {
            let Some(lpn) = self.fs.locate(file, b) else {
                return Ok(None);
            };
            let c = dev.submit(t, &IoRequest::read(lpn * 4096, 4096))?;
            t = c.finished;
        }
        Ok(Some(t))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut geometry = Geometry::consumer_1p5gb();
    geometry.blocks_per_chip = 20; // 12 zones: tight enough to clean
    let mut dev = ConZone::new(
        DeviceConfig::builder(geometry)
            .conventional_zones(2)
            .max_open_zones(8)
            .build()?,
    );
    let mut kv = KvStore::new(&dev);
    let mut rng = SimRng::new(0x5707e);
    let mut t = SimTime::ZERO;

    // Load 4096 keys, then run a zipf-skewed 80/20 GET/PUT mix.
    const KEYS: u64 = 4096;
    for key in 0..KEYS {
        t = kv.put(&mut dev, t, key, false)?;
    }
    let load_done = t;

    let mut get_lat = LatencyHistogram::new();
    let mut put_lat = LatencyHistogram::new();
    let (mut gets, mut puts) = (0u64, 0u64);
    for _ in 0..60_000 {
        // Approximate zipf: bias toward low key ids by squaring.
        let u = rng.f64();
        let key = ((u * u) * KEYS as f64) as u64;
        let start = t;
        if rng.chance(0.8) {
            if let Some(t2) = kv.get(&mut dev, t, key)? {
                t = t2;
                get_lat.record(t - start);
                gets += 1;
            }
        } else {
            t = kv.put(&mut dev, t, key, true)?;
            put_lat.record(t - start);
            puts += 1;
        }
    }

    let c = dev.counters();
    let fs = kv.fs.stats();
    println!("kv store on ConZone (via f2fs-lite, metadata in conventional zones)\n");
    println!(
        "load phase : {KEYS} x 16 KiB values in {:.3} s",
        load_done.as_secs_f64()
    );
    println!(
        "mix phase  : {gets} GETs ({}), {puts} PUTs ({}) in {:.3} s",
        get_lat.summary().p99,
        put_lat.summary().p99,
        (t - load_done).as_secs_f64()
    );
    println!("\napplication view      file-system view        device view");
    println!(
        "GET p50 {:>8}      cleanings   {:>6}      l2p miss   {:>5.1}%",
        get_lat.quantile(0.5),
        fs.cleanings,
        c.l2p_miss_rate() * 100.0
    );
    println!(
        "GET p99 {:>8}      migrated MiB {:>5}      conflicts  {:>6}",
        get_lat.quantile(0.99),
        (fs.migrated_blocks * 4096) >> 20,
        c.buffer_conflicts
    );
    println!(
        "PUT p50 {:>8}      node writes {:>6}      waf        {:>6.3}",
        put_lat.quantile(0.5),
        fs.node_blocks,
        c.write_amplification()
    );
    println!(
        "PUT p99 {:>8}      zone resets {:>6}      gc runs    {:>6}",
        put_lat.quantile(0.99),
        fs.zone_resets,
        c.gc_runs
    );
    println!("\ndevice time: {}", dev.time_breakdown());
    Ok(())
}
