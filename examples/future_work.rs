//! The paper's §III-E future work, implemented and measured:
//!
//! 1. **Conventional zones** — F2FS metadata needs in-place updates; the
//!    first zones of the device accept them, page-mapped into SLC.
//! 2. **L2P mapping-table persistence** — mapping updates accumulate in a
//!    log whose flush to flash blocks host requests.
//!
//! The experiment runs the same F2FS-like workload three ways and shows
//! what each feature costs and buys.
//!
//! ```sh
//! cargo run --release --example future_work
//! ```

use conzone::host::{F2fsLite, Temperature};
use conzone::types::{Counters, DeviceConfig, Geometry, SimTime, StorageDevice};
use conzone::ConZone;

fn device(conventional: usize, l2p_log: u64) -> ConZone {
    let mut geometry = Geometry::consumer_1p5gb();
    geometry.blocks_per_chip = 32; // 24 zones
    ConZone::new(
        DeviceConfig::builder(geometry)
            .conventional_zones(conventional)
            .l2p_log_entries(l2p_log)
            .max_open_zones(8)
            .build()
            .expect("future-work config"),
    )
}

/// The same mixed F2FS-like workload: files across three temperatures
/// with steady metadata updates.
fn run(mut dev: ConZone, fs: &mut F2fsLite) -> (Counters, f64) {
    let mut t = SimTime::ZERO;
    for round in 0..6u64 {
        for file in 0..12u64 {
            let temp = match file % 3 {
                0 => Temperature::Hot,
                1 => Temperature::Warm,
                _ => Temperature::Cold,
            };
            t = fs
                .write_file(&mut dev, t, file, round * 64, 512, temp)
                .expect("write");
        }
    }
    (dev.counters(), t.as_secs_f64())
}

fn main() {
    // Baseline: six logs, no persistence modelling.
    let dev = device(0, 0);
    let mut fs = F2fsLite::new(&dev);
    let (base, base_secs) = run(dev, &mut fs);

    // Conventional metadata zones: node blocks become in-place updates.
    let dev = device(2, 0);
    let mut fs = F2fsLite::with_conventional_metadata(&dev, 2);
    let (conv, conv_secs) = run(dev, &mut fs);

    // Plus L2P persistence with a small (costly) log.
    let dev = device(2, 256);
    let mut fs = F2fsLite::with_conventional_metadata(&dev, 2);
    let (persist, persist_secs) = run(dev, &mut fs);

    println!("workload: 6 rounds x 12 files x 2 MiB appends + node updates\n");
    println!(
        "{:<34} {:>9} {:>12} {:>12}",
        "", "baseline", "conv. zones", "+ l2p log"
    );
    let row = |name: &str, a: f64, b: f64, c: f64| {
        println!("{name:<34} {a:>9.3} {b:>12.3} {c:>12.3}");
    };
    row("duration (s)", base_secs, conv_secs, persist_secs);
    row(
        "write amplification",
        base.write_amplification(),
        conv.write_amplification(),
        persist.write_amplification(),
    );
    println!(
        "{:<34} {:>9} {:>12} {:>12}",
        "buffer conflicts", base.buffer_conflicts, conv.buffer_conflicts, persist.buffer_conflicts
    );
    println!(
        "{:<34} {:>9} {:>12} {:>12}",
        "premature flushes",
        base.premature_flushes,
        conv.premature_flushes,
        persist.premature_flushes
    );
    println!(
        "{:<34} {:>9} {:>12} {:>12}",
        "in-place metadata updates",
        base.conventional_updates,
        conv.conventional_updates,
        persist.conventional_updates
    );
    println!(
        "{:<34} {:>9} {:>12} {:>12}",
        "l2p log flushes", base.l2p_log_flushes, conv.l2p_log_flushes, persist.l2p_log_flushes
    );

    println!(
        "\nconventional zones route metadata around the sequential logs\n\
         ({} node updates became in-place SLC writes), trading log churn\n\
         for SLC traffic; the L2P persistence log then adds {} blocking\n\
         flushes — the §III-E cost the paper defers to future work.",
        conv.conventional_updates,
        persist.l2p_log_flushes - conv.l2p_log_flushes
    );
}
