//! F2FS-style aging: six open logs, overwrites, deletes and segment
//! cleaning on a ConZone device.
//!
//! Consumer devices run F2FS (paper §I/§II-B): up to six logs write
//! sequentially into their own zones while cleaning migrates live blocks
//! and resets victims. This example ages a device through several
//! overwrite generations and reports how write amplification builds up
//! from three sources: device-side SLC buffering, file-system cleaning
//! and zone resets.
//!
//! ```sh
//! cargo run --release --example f2fs_aging
//! ```

use conzone::host::{F2fsLite, Temperature};
use conzone::types::{DeviceConfig, Geometry, SimTime, StorageDevice};
use conzone::ConZone;

const FILES: u64 = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A modest, nearly-full device so aging converges quickly:
    // 20 zones of 16 MiB against a ~128 MiB live working set.
    let mut geometry = Geometry::consumer_1p5gb();
    geometry.blocks_per_chip = 28; // 8 SLC + 20 normal superblocks
    let cfg = DeviceConfig::builder(geometry).max_open_zones(8).build()?;
    let zone_mib = cfg.zone_size_bytes() >> 20;
    let mut dev = ConZone::new(cfg);
    let mut fs = F2fsLite::new(&dev);
    println!(
        "device: {} zones x {} MiB; f2fs-lite with 6 logs\n",
        fs.free_zones(),
        zone_mib
    );

    let mut t = SimTime::ZERO;
    let blocks_per_file = 2048; // 8 MiB files
    println!("gen   files  live MiB  free zones  cleanings  migrated  waf(dev)  host MiB");
    // Generation 0 lays the working set down; later generations overwrite
    // *parts* of each file, so zones hold a live/stale mixture and
    // cleaning must migrate.
    for file in 0..FILES {
        t = fs.write_file(&mut dev, t, file, 0, blocks_per_file, Temperature::Warm)?;
    }
    'aging: for generation in 0..8u64 {
        for file in 0..FILES {
            let temp = match file % 3 {
                0 => Temperature::Hot,
                1 => Temperature::Warm,
                _ => Temperature::Cold,
            };
            // Overwrite a quarter of the file at a rotating offset.
            let start = (generation * 512 + file * 128) % (blocks_per_file - 512);
            match fs.write_file(&mut dev, t, file, start, 512, temp) {
                Ok(t2) => t = t2,
                Err(e) => {
                    println!("aging stopped at generation {generation}: {e}");
                    break 'aging;
                }
            }
        }
        // Delete and recreate a few files each generation.
        for file in (0..FILES).filter(|f| f % 8 == generation % 8) {
            fs.delete_file(file);
            match fs.write_file(&mut dev, t, file, 0, blocks_per_file, Temperature::Warm) {
                Ok(t2) => t = t2,
                Err(e) => {
                    println!("aging stopped at generation {generation}: {e}");
                    break 'aging;
                }
            }
        }
        let s = fs.stats();
        let c = dev.counters();
        println!(
            "{generation:>3}   {:>5}  {:>8}  {:>10}  {:>9}  {:>8}  {:>8.3}  {:>8}",
            FILES,
            (fs.live_blocks() * 4096) >> 20,
            fs.free_zones(),
            s.cleanings,
            s.migrated_blocks,
            c.write_amplification(),
            c.host_write_bytes >> 20,
        );
    }

    let s = fs.stats();
    let c = dev.counters();
    println!(
        "\nafter aging: {} zone resets reached the device, {} MiB migrated by\n\
         cleaning, device waf {:.3} (SLC share {:.1} %), simulated time {:.2} s",
        c.zone_resets,
        (s.migrated_blocks * 4096) >> 20,
        c.write_amplification(),
        100.0 * c.flash_program_bytes_slc as f64 / c.flash_program_bytes().max(1) as f64,
        t.as_secs_f64(),
    );
    println!(
        "note: F2FS's six logs over two device write buffers keep a steady\n\
         trickle of premature flushes ({} in total) — the contention the\n\
         paper's §II-B arithmetic predicts.",
        c.premature_flushes
    );
    Ok(())
}
