//! Trace-driven evaluation: synthesise a mobile-like trace, save it in the
//! portable text format, and replay it against ConZone with each L2P
//! search strategy.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use conzone::host::{replay_trace, MobileTraceBuilder, Trace};
use conzone::types::{
    DeviceConfig, Geometry, MapGranularity, SearchStrategy, SimTime, ZonedDevice,
};
use conzone::ConZone;

fn device(strategy: SearchStrategy) -> ConZone {
    ConZone::new(
        DeviceConfig::builder(Geometry::consumer_1p5gb())
            .search_strategy(strategy)
            // Chunk-level hybrid mapping with a cache smaller than the
            // written chunk count, so the miss path matters — except for
            // PINNED, which uses whole-zone entries (the §IV-D design).
            .max_aggregation(if strategy == SearchStrategy::Pinned {
                MapGranularity::Zone
            } else {
                MapGranularity::Chunk
            })
            .l2p_cache_bytes(512) // 128 entries
            .build()
            .expect("trace config"),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a synthetic consumer trace: photo bursts + metadata commits +
    // zipf-skewed thumbnail reads.
    let probe = device(SearchStrategy::Bitmap);
    // 64 bursts fill ~1 GiB of media zones — more chunks than the small
    // L2P cache can hold, so the search strategies separate.
    let trace = MobileTraceBuilder::new(probe.zone_size(), probe.zone_count() as u64)
        .bursts(64)
        .burst_bytes(16 * 1024 * 1024)
        .reads(30_000)
        .read_skew(0.2) // nearly uniform: a wide read footprint
        .seed(42)
        .build();
    println!(
        "trace: {} ops, {:.0} MiB moved",
        trace.len(),
        trace.total_bytes() as f64 / (1 << 20) as f64
    );

    // Round-trip through the text format, as a real tool would.
    let text = trace.to_text();
    let trace = Trace::parse(&text)?;

    println!("\nstrategy   duration    l2p miss   mapping fetches");
    for strategy in [
        SearchStrategy::Bitmap,
        SearchStrategy::Multiple,
        SearchStrategy::Pinned,
    ] {
        let mut dev = device(strategy);
        let report = replay_trace(&mut dev, &trace, SimTime::ZERO, false)?;
        println!(
            "{:<10} {:>7.3}s   {:>7.1}%   {:>15}",
            strategy.to_string(),
            report.duration().as_secs_f64(),
            report.counters.l2p_miss_rate() * 100.0,
            report.counters.flash_mapping_reads,
        );
    }
    println!(
        "\nthe same trace separates the strategies exactly as Fig. 8 does:\n\
         MULTIPLE pays extra mapping fetches per miss, PINNED avoids the\n\
         misses entirely."
    );
    Ok(())
}
