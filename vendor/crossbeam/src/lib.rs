//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is used in this workspace (parallel
//! benchmark sweeps); std's scoped threads (Rust 1.63+) provide the same
//! guarantees, so the stand-in adapts crossbeam's closure-takes-scope API
//! onto `std::thread::scope`.

#![forbid(unsafe_code)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to spawned closures, mirroring
    /// `crossbeam::thread::Scope`.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam style) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// this returns. Returns `Err` with the panic payload if the closure
    /// (or an unjoined child) panicked, matching crossbeam's signature.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_join_and_return() {
            let data = [1u64, 2, 3];
            let sums: Vec<u64> = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            assert_eq!(sums, vec![10, 20, 30]);
        }
    }
}
