//! Offline stand-in for the `proc-macro2` crate.
//!
//! The build environment has no crates.io mirror, so — like the other
//! stand-ins under `vendor/` — this crate implements exactly the API
//! surface the workspace uses: lexing Rust source text into a tree of
//! spanned tokens (`TokenStream` / `TokenTree`), the foundation the
//! `syn` stand-in parses its AST from. There is no compiler bridge
//! (`proc_macro` interop) and no `quote!`-style construction beyond
//! `FromStr`/`Display`.
//!
//! Divergences from the real crate, chosen for the lint engine's needs:
//!
//! * [`Span`] always carries line/column information (the real crate
//!   gates this behind the `span-locations` feature) plus byte offsets.
//! * Comments — including doc comments — are skipped entirely rather
//!   than being converted into `#[doc]` attributes. The lint engine
//!   reads comment text separately for its allowlist directives, and
//!   dropping doc text from the token stream is precisely what makes
//!   identifier rules immune to mentions inside documentation.
//! * Lifetimes lex as a joint `'` punct followed by an ident, matching
//!   the real crate's behaviour.

use std::fmt;
use std::str::FromStr;

/// A region of source text: byte offsets plus 1-based line / 0-based
/// column of the start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Starting byte offset into the lexed source.
    pub lo: usize,
    /// Ending byte offset (exclusive).
    pub hi: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 0-based UTF-8 column of the first byte.
    pub column: usize,
}

impl Span {
    /// A zero-width placeholder span (used by synthesized tokens).
    pub fn call_site() -> Span {
        Span {
            lo: 0,
            hi: 0,
            line: 1,
            column: 0,
        }
    }

    /// Line/column of the span start, mirroring the real crate's
    /// `span-locations` accessor.
    pub fn start(&self) -> LineColumn {
        LineColumn {
            line: self.line,
            column: self.column,
        }
    }
}

/// A line/column pair as returned by [`Span::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LineColumn {
    /// 1-based line number.
    pub line: usize,
    /// 0-based column.
    pub column: usize,
}

/// Delimiter of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( … )`
    Parenthesis,
    /// `{ … }`
    Brace,
    /// `[ … ]`
    Bracket,
    /// Invisible delimiters (never produced by the lexer; kept for API
    /// parity).
    None,
}

/// Whether a punct is immediately followed by another punct character
/// (`Joint`) or not (`Alone`) — what lets a parser reassemble `::`,
/// `=>`, `->` from single-character puncts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Followed by whitespace or a non-punct token.
    Alone,
    /// Immediately followed by another punct character.
    Joint,
}

/// An identifier or keyword (including `_` and raw `r#ident` forms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    text: String,
    span: Span,
}

impl Ident {
    /// Creates an identifier with the given span.
    pub fn new(text: &str, span: Span) -> Ident {
        Ident {
            text: text.to_string(),
            span,
        }
    }

    /// The identifier text, without any `r#` prefix.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The identifier's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A single punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Punct {
    ch: char,
    spacing: Spacing,
    span: Span,
}

impl Punct {
    /// Creates a punct token.
    pub fn new(ch: char, spacing: Spacing, span: Span) -> Punct {
        Punct { ch, spacing, span }
    }

    /// The punctuation character.
    pub fn as_char(&self) -> char {
        self.ch
    }

    /// Whether the next source character is also a punct character.
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// The punct's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// A literal: numbers, strings, chars, byte strings — kept as raw text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    text: String,
    span: Span,
}

impl Literal {
    /// Creates a literal from its raw source text.
    pub fn new(text: &str, span: Span) -> Literal {
        Literal {
            text: text.to_string(),
            span,
        }
    }

    /// The raw source text of the literal (quotes, suffixes and all).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The literal's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// A delimited group of tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    delimiter: Delimiter,
    stream: TokenStream,
    span: Span,
}

impl Group {
    /// Creates a group.
    pub fn new(delimiter: Delimiter, stream: TokenStream, span: Span) -> Group {
        Group {
            delimiter,
            stream,
            span,
        }
    }

    /// The group's delimiter.
    pub fn delimiter(&self) -> Delimiter {
        self.delimiter
    }

    /// The tokens between the delimiters.
    pub fn stream(&self) -> &TokenStream {
        &self.stream
    }

    /// The span from opening to closing delimiter.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// One token tree: a group, identifier, punct or literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenTree {
    /// A delimited group.
    Group(Group),
    /// An identifier or keyword.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// The token's span (a group's span covers its delimiters).
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span(),
            TokenTree::Ident(i) => i.span(),
            TokenTree::Punct(p) => p.span(),
            TokenTree::Literal(l) => l.span(),
        }
    }

    /// The identifier text if this is an ident token.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenTree::Ident(i) => Some(i.text()),
            _ => None,
        }
    }

    /// The punct character if this is a punct token.
    pub fn as_punct(&self) -> Option<char> {
        match self {
            TokenTree::Punct(p) => Some(p.as_char()),
            _ => None,
        }
    }

    /// The literal if this is a literal token.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            TokenTree::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// The group if this is a group token.
    pub fn as_group(&self) -> Option<&Group> {
        match self {
            TokenTree::Group(g) => Some(g),
            _ => None,
        }
    }
}

impl fmt::Display for TokenTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenTree::Group(g) => {
                let (open, close) = match g.delimiter() {
                    Delimiter::Parenthesis => ("(", ")"),
                    Delimiter::Brace => ("{ ", " }"),
                    Delimiter::Bracket => ("[", "]"),
                    Delimiter::None => ("", ""),
                };
                write!(f, "{open}{}{close}", g.stream())
            }
            TokenTree::Ident(i) => f.write_str(i.text()),
            TokenTree::Punct(p) => f.write_str(&p.as_char().to_string()),
            TokenTree::Literal(l) => f.write_str(l.text()),
        }
    }
}

/// A flat sequence of token trees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenStream {
    tokens: Vec<TokenTree>,
}

impl TokenStream {
    /// An empty stream.
    pub fn new() -> TokenStream {
        TokenStream::default()
    }

    /// The tokens in order.
    pub fn tokens(&self) -> &[TokenTree] {
        &self.tokens
    }

    /// Whether the stream has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of top-level token trees.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Appends one token.
    pub fn push(&mut self, tt: TokenTree) {
        self.tokens.push(tt);
    }
}

impl From<Vec<TokenTree>> for TokenStream {
    fn from(tokens: Vec<TokenTree>) -> TokenStream {
        TokenStream { tokens }
    }
}

impl IntoIterator for TokenStream {
    type Item = TokenTree;
    type IntoIter = std::vec::IntoIter<TokenTree>;
    fn into_iter(self) -> Self::IntoIter {
        self.tokens.into_iter()
    }
}

impl<'a> IntoIterator for &'a TokenStream {
    type Item = &'a TokenTree;
    type IntoIter = std::slice::Iter<'a, TokenTree>;
    fn into_iter(self) -> Self::IntoIter {
        self.tokens.iter()
    }
}

impl fmt::Display for TokenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in &self.tokens {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// A lexing failure, with the position it happened at.
#[derive(Debug, Clone)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line of the failure.
    pub line: usize,
    /// 0-based column of the failure.
    pub column: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for LexError {}

impl FromStr for TokenStream {
    type Err = LexError;

    fn from_str(src: &str) -> Result<TokenStream, LexError> {
        Lexer::new(src).lex_all()
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    /// Byte offset of the current line start (column = pos − line_start
    /// counted in chars; the workspace is ASCII outside comments/strings,
    /// and those never produce tokens, so byte columns suffice).
    line_start: usize,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn span_from(&self, lo: usize, lo_line: usize, lo_col: usize) -> Span {
        Span {
            lo,
            hi: self.pos,
            line: lo_line,
            column: lo_col,
        }
    }

    fn err(&self, message: &str) -> LexError {
        LexError {
            message: message.to_string(),
            line: self.line,
            column: self.pos - self.line_start,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advances one byte, tracking line starts.
    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    /// Advances to the next char boundary (multi-byte aware).
    fn bump_char(&mut self) {
        let c = self.src[self.pos..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        for _ in 0..c {
            self.bump();
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if (c as char).is_ascii_whitespace() => self.bump(),
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let mut depth = 0usize;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.bump();
                                self.bump();
                            }
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.bump();
                                self.bump();
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => self.bump(),
                            (None, _) => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_all(&mut self) -> Result<TokenStream, LexError> {
        // Shebang line (`#!...` not followed by `[`) — skip.
        if self.src.starts_with("#!") && !self.src.starts_with("#![") {
            while self.peek().is_some_and(|c| c != b'\n') {
                self.bump();
            }
        }
        let tokens = self.lex_until(None)?;
        Ok(TokenStream::from(tokens))
    }

    /// Lexes until the closing delimiter `until` (or end of input).
    fn lex_until(&mut self, until: Option<u8>) -> Result<Vec<TokenTree>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let Some(c) = self.peek() else {
                if until.is_some() {
                    return Err(self.err("unexpected end of input inside a group"));
                }
                return Ok(out);
            };
            if Some(c) == until {
                return Ok(out);
            }
            let lo = self.pos;
            let lo_line = self.line;
            let lo_col = self.pos - self.line_start;
            match c {
                b'(' | b'[' | b'{' => {
                    let (delim, close) = match c {
                        b'(' => (Delimiter::Parenthesis, b')'),
                        b'[' => (Delimiter::Bracket, b']'),
                        _ => (Delimiter::Brace, b'}'),
                    };
                    self.bump();
                    let inner = self.lex_until(Some(close))?;
                    if self.peek() != Some(close) {
                        return Err(self.err("unbalanced delimiter"));
                    }
                    self.bump();
                    let span = self.span_from(lo, lo_line, lo_col);
                    out.push(TokenTree::Group(Group::new(
                        delim,
                        TokenStream::from(inner),
                        span,
                    )));
                }
                b')' | b']' | b'}' => return Err(self.err("unbalanced closing delimiter")),
                b'"' => {
                    self.lex_string()?;
                    let span = self.span_from(lo, lo_line, lo_col);
                    out.push(TokenTree::Literal(Literal::new(
                        &self.src[lo..self.pos],
                        span,
                    )));
                }
                b'\'' => {
                    // Lifetime vs char literal: `'a` followed by a non-quote
                    // is a lifetime; everything else (including multi-byte
                    // chars like `'—'`) is a char literal.
                    let mut rest = self.src[self.pos + 1..].chars();
                    let is_lifetime = match (rest.next(), rest.next()) {
                        (Some(n), after) if is_ident_start(n) => after != Some('\''),
                        _ => false,
                    };
                    if is_lifetime {
                        self.bump();
                        let span = self.span_from(lo, lo_line, lo_col);
                        out.push(TokenTree::Punct(Punct::new('\'', Spacing::Joint, span)));
                        let ident_lo = self.pos;
                        while self.src[self.pos..]
                            .chars()
                            .next()
                            .is_some_and(is_ident_continue)
                        {
                            self.bump_char();
                        }
                        let span = self.span_from(ident_lo, lo_line, lo_col + 1);
                        out.push(TokenTree::Ident(Ident::new(
                            &self.src[ident_lo..self.pos],
                            span,
                        )));
                    } else {
                        self.lex_char()?;
                        let span = self.span_from(lo, lo_line, lo_col);
                        out.push(TokenTree::Literal(Literal::new(
                            &self.src[lo..self.pos],
                            span,
                        )));
                    }
                }
                b'0'..=b'9' => {
                    self.lex_number();
                    let span = self.span_from(lo, lo_line, lo_col);
                    out.push(TokenTree::Literal(Literal::new(
                        &self.src[lo..self.pos],
                        span,
                    )));
                }
                _ if is_ident_start(self.src[self.pos..].chars().next().unwrap_or('\0')) => {
                    // `r"…"` / `r#"…"#` raw strings, `b"…"` / `br"…"` byte
                    // strings and `b'…'` byte chars start with ident chars.
                    if self.lex_prefixed_literal()? {
                        let span = self.span_from(lo, lo_line, lo_col);
                        out.push(TokenTree::Literal(Literal::new(
                            &self.src[lo..self.pos],
                            span,
                        )));
                        continue;
                    }
                    // Raw identifier `r#ident`.
                    if self.src[self.pos..].starts_with("r#")
                        && self.src[self.pos + 2..]
                            .chars()
                            .next()
                            .is_some_and(is_ident_start)
                    {
                        self.bump();
                        self.bump();
                    }
                    let text_lo = self.pos;
                    while self.src[self.pos..]
                        .chars()
                        .next()
                        .is_some_and(is_ident_continue)
                    {
                        self.bump_char();
                    }
                    let span = self.span_from(lo, lo_line, lo_col);
                    out.push(TokenTree::Ident(Ident::new(
                        &self.src[text_lo..self.pos],
                        span,
                    )));
                }
                _ => {
                    // A punctuation character (possibly multi-byte, e.g. a
                    // stray unicode char would land here — treat as punct).
                    let ch = self.src[self.pos..].chars().next().unwrap_or('?');
                    self.bump_char();
                    let next_is_punct = self.peek().is_some_and(|n| {
                        !(n as char).is_ascii_whitespace()
                            && !is_ident_start(n as char)
                            && !n.is_ascii_digit()
                            && !matches!(n, b'(' | b')' | b'[' | b']' | b'{' | b'}' | b'"' | b'\'')
                    });
                    let spacing = if next_is_punct {
                        Spacing::Joint
                    } else {
                        Spacing::Alone
                    };
                    let span = self.span_from(lo, lo_line, lo_col);
                    out.push(TokenTree::Punct(Punct::new(ch, spacing, span)));
                }
            }
        }
    }

    /// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` forms if present.
    /// Returns whether a literal was consumed.
    fn lex_prefixed_literal(&mut self) -> Result<bool, LexError> {
        let rest = &self.src[self.pos..];
        let (prefix_len, raw, quote) = if rest.starts_with("br") {
            (2, true, b'"')
        } else if rest.starts_with("b\"") {
            (1, false, b'"')
        } else if rest.starts_with("b'") {
            (1, false, b'\'')
        } else if rest.starts_with('r') {
            (1, true, b'"')
        } else {
            return Ok(false);
        };
        if raw {
            // Count hashes after the prefix; require a quote next,
            // otherwise this is an identifier like `raw` or `r#ident`.
            let mut j = prefix_len;
            let bytes = rest.as_bytes();
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) != Some(&b'"') {
                return Ok(false);
            }
            for _ in 0..j + 1 {
                self.bump();
            }
            loop {
                match self.peek() {
                    Some(b'"') => {
                        // (1..=0) is empty, so unhashed raw strings close
                        // on the first quote.
                        let closes = (1..=hashes).all(|h| self.peek_at(h) == Some(b'#'));
                        self.bump();
                        if closes {
                            for _ in 0..hashes {
                                self.bump();
                            }
                            return Ok(true);
                        }
                    }
                    Some(_) => self.bump(),
                    None => return Err(self.err("unterminated raw string")),
                }
            }
        }
        if rest.as_bytes().get(prefix_len) != Some(&quote) {
            return Ok(false);
        }
        for _ in 0..prefix_len {
            self.bump();
        }
        if quote == b'"' {
            self.lex_string()?;
        } else {
            self.lex_char()?;
        }
        Ok(true)
    }

    /// Consumes a `"…"` string starting at the opening quote.
    fn lex_string(&mut self) -> Result<(), LexError> {
        self.bump(); // opening quote
        loop {
            match self.peek() {
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => self.bump_char(),
                None => return Err(self.err("unterminated string literal")),
            }
        }
    }

    /// Consumes a `'…'` char literal starting at the opening quote.
    fn lex_char(&mut self) -> Result<(), LexError> {
        self.bump(); // opening quote
        loop {
            match self.peek() {
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'\'') => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => self.bump_char(),
                None => return Err(self.err("unterminated char literal")),
            }
        }
    }

    /// Consumes a numeric literal (ints, floats, radix prefixes, suffixes,
    /// underscores). A `.` is only part of the number when followed by a
    /// digit, so ranges (`0..n`) and method calls (`1.max(x)`) lex apart.
    fn lex_number(&mut self) {
        if self.peek() == Some(b'0')
            && matches!(
                self.peek_at(1),
                Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B')
            )
        {
            self.bump();
            self.bump();
        }
        let digitish = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
        while self.peek().is_some_and(digitish) {
            self.bump();
        }
        // Fractional part.
        if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek().is_some_and(digitish) {
                self.bump();
            }
        }
        // Exponent with sign (`1e-9`): the digit run above already ate
        // `e`; a following `+`/`-` digit run belongs to the number.
        if matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(self.peek(), Some(b'+' | b'-'))
            && self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            while self.peek().is_some_and(digitish) {
                self.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> TokenStream {
        src.parse().expect("lexes")
    }

    #[test]
    fn idents_puncts_and_groups() {
        let ts = lex("fn foo(a: u64) -> bool { a > 1 }");
        let t = ts.tokens();
        assert_eq!(t[0].as_ident(), Some("fn"));
        assert_eq!(t[1].as_ident(), Some("foo"));
        let params = t[2].as_group().expect("param group");
        assert_eq!(params.delimiter(), Delimiter::Parenthesis);
        assert_eq!(params.stream().len(), 3);
        assert_eq!(t[3].as_punct(), Some('-'));
        assert_eq!(t[4].as_punct(), Some('>'));
        assert_eq!(t[5].as_ident(), Some("bool"));
        let body = t[6].as_group().expect("body group");
        assert_eq!(body.delimiter(), Delimiter::Brace);
    }

    #[test]
    fn spans_carry_lines_and_columns() {
        let ts = lex("a\n  bcd");
        let t = ts.tokens();
        assert_eq!(t[0].span().line, 1);
        assert_eq!(t[0].span().column, 0);
        assert_eq!(t[1].span().line, 2);
        assert_eq!(t[1].span().column, 2);
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let ts = lex("// HashMap\n/* HashMap */ let x = \"HashMap\"; /// doc HashMap\nlet y = 1;");
        let text: Vec<String> = ts
            .tokens()
            .iter()
            .filter_map(|t| t.as_ident().map(str::to_string))
            .collect();
        assert_eq!(text, ["let", "x", "let", "y"]);
    }

    #[test]
    fn lifetimes_are_joint_quote_plus_ident() {
        let ts = lex("&'a str");
        let t = ts.tokens();
        assert_eq!(t[0].as_punct(), Some('&'));
        assert_eq!(t[1].as_punct(), Some('\''));
        assert_eq!(t[2].as_ident(), Some("a"));
        assert_eq!(t[3].as_ident(), Some("str"));
    }

    #[test]
    fn char_literals_are_single_tokens() {
        let ts = lex(r"let c = '\''; let n = 'x';");
        let lits: Vec<&str> = ts
            .tokens()
            .iter()
            .filter_map(|t| match t {
                TokenTree::Literal(l) => Some(l.text()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, [r"'\''", "'x'"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let ts = lex("0..64 , 1.5e-9 , 25_000.0 , 0xff_u64");
        let kinds: Vec<String> = ts.tokens().iter().map(|t| t.to_string()).collect();
        assert_eq!(
            kinds,
            ["0", ".", ".", "64", ",", "1.5e-9", ",", "25_000.0", ",", "0xff_u64"]
        );
    }

    #[test]
    fn raw_strings_and_byte_literals() {
        let ts = lex(r##"let a = r#"Hash"Map"#; let b = b"bytes"; let c = b'x';"##);
        let lits = ts
            .tokens()
            .iter()
            .filter(|t| matches!(t, TokenTree::Literal(_)))
            .count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn unbalanced_input_is_an_error() {
        assert!("fn f( {".parse::<TokenStream>().is_err());
        assert!("}".parse::<TokenStream>().is_err());
    }
}
