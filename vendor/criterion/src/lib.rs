//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Throughput`,
//! `black_box`, `Bencher::iter`/`iter_with_setup`) over plain
//! `std::time::Instant` timing. Statistics are simpler than the real
//! crate — mean over a fixed number of timed samples after a short
//! warm-up — but stable enough for A/B regression checks on the same
//! machine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units a benchmark processes per iteration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Top-level benchmark driver (a per-process registry of settings).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, None, f);
        self
    }
}

/// A named group sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine they hand it.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    pending_sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to get a
    /// readable figure.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: aim for samples of at least ~1 ms or 16 iterations.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 16) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.pending_sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter`] but rebuilds untimed input before each
    /// timed call.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        // Warm-up pass.
        let input = setup();
        black_box(routine(input));
        for _ in 0..self.pending_sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        pending_sample_size: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:10.1} MiB/s",
                n as f64 / (mean / 1e9) / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:10.1} Kelem/s", n as f64 / (mean / 1e9) / 1000.0)
        }
        None => String::new(),
    };
    println!("{name:<40} {mean:12.1} ns/iter (median {median:.1}){rate}");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(17);
                black_box(x)
            });
        });
        group.bench_function("with_setup", |b| {
            b.iter_with_setup(|| vec![1u8; 64], |v| black_box(v.len()));
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
