/root/repo/vendor/loom/target/debug/deps/loom-d632a6d1ba86d3ab.d: src/lib.rs src/rt.rs src/sync.rs src/thread.rs

/root/repo/vendor/loom/target/debug/deps/loom-d632a6d1ba86d3ab: src/lib.rs src/rt.rs src/sync.rs src/thread.rs

src/lib.rs:
src/rt.rs:
src/sync.rs:
src/thread.rs:
