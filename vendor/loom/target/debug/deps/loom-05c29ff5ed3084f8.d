/root/repo/vendor/loom/target/debug/deps/loom-05c29ff5ed3084f8.d: src/lib.rs src/rt.rs src/sync.rs src/thread.rs

/root/repo/vendor/loom/target/debug/deps/libloom-05c29ff5ed3084f8.rlib: src/lib.rs src/rt.rs src/sync.rs src/thread.rs

/root/repo/vendor/loom/target/debug/deps/libloom-05c29ff5ed3084f8.rmeta: src/lib.rs src/rt.rs src/sync.rs src/thread.rs

src/lib.rs:
src/rt.rs:
src/sync.rs:
src/thread.rs:
