//! The exploration runtime: a token-passing scheduler over real OS
//! threads plus a depth-first search over scheduling decisions.
//!
//! One [`Rt`] exists per *execution* (one complete run of the model
//! closure under one schedule). Controlled threads serialize on a
//! token: at every scheduling point the running thread asks the
//! scheduler who runs next, hands the token over if the answer is not
//! itself, and sleeps on a condvar until the token comes back. Each
//! point where more than one thread could legally run is a recorded
//! [`Decision`]; [`model`] replays the committed prefix, extends it by
//! always preferring the incumbent thread, and backtracks through the
//! recorded alternatives until no unexplored branch remains.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used to tear down controlled threads after another
/// thread already failed; recognized by the wrappers, never surfaced.
pub(crate) const ABORT: &str = "loom-standin-abort";

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Schedulable.
    Ready,
    /// Called `yield_now`; schedulable only when nothing else is.
    Yielded,
    /// Waiting in `join` for the given thread to finish.
    Blocked(usize),
    /// Closure returned (or the thread was torn down).
    Done,
}

/// One branch point: the thread that got the token, plus every other
/// legal choice not yet explored.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    chosen: usize,
    alternatives: Vec<usize>,
}

struct State {
    /// Which thread currently holds the token.
    current: usize,
    status: Vec<Status>,
    /// Committed decision prefix being replayed this execution.
    replay: Vec<Decision>,
    cursor: usize,
    /// Full decision log of this execution (prefix included).
    trace: Vec<Decision>,
    preemptions: usize,
    max_preemptions: usize,
    abort: bool,
    failure: Option<String>,
}

impl State {
    /// Threads that may legally receive the token right now. Yielded
    /// threads are eligible only when no Ready thread exists (their
    /// flags persist until they are actually rescheduled).
    fn candidates(&self) -> Vec<usize> {
        let ready: Vec<usize> = (0..self.status.len())
            .filter(|&t| self.status[t] == Status::Ready)
            .collect();
        if !ready.is_empty() {
            return ready;
        }
        (0..self.status.len())
            .filter(|&t| self.status[t] == Status::Yielded)
            .collect()
    }

    /// Picks the next thread at a scheduling point reached by `me`,
    /// recording the decision (and its unexplored alternatives) in the
    /// trace. Sets `abort` on deadlock.
    fn decide(&mut self, me: usize) -> usize {
        if self.cursor < self.replay.len() {
            let d = self.replay[self.cursor].clone();
            self.cursor += 1;
            if d.chosen != me && self.status.get(me) == Some(&Status::Ready) {
                self.preemptions += 1;
            }
            self.trace.push(d.clone());
            return d.chosen;
        }
        let cands = self.candidates();
        if cands.is_empty() {
            self.abort = true;
            if self.failure.is_none() {
                self.failure = Some("deadlock: every live thread is blocked".to_string());
            }
            return me;
        }
        let me_ready = self.status.get(me) == Some(&Status::Ready) && cands.contains(&me);
        let chosen = if me_ready { me } else { cands[0] };
        let mut alternatives: Vec<usize> = cands.into_iter().filter(|&t| t != chosen).collect();
        // Taking an alternative instead of the still-runnable incumbent
        // would be a preemption; cut those branches once the budget is
        // spent. Forced switches (incumbent not runnable) stay free.
        if me_ready && self.preemptions >= self.max_preemptions {
            alternatives.clear();
        }
        self.trace.push(Decision {
            chosen,
            alternatives,
        });
        chosen
    }

    fn all_done(&self) -> bool {
        self.status.iter().all(|s| *s == Status::Done)
    }
}

pub(crate) struct Rt {
    st: Mutex<State>,
    cv: Condvar,
}

impl Rt {
    fn new(replay: Vec<Decision>, max_preemptions: usize) -> Rt {
        Rt {
            st: Mutex::new(State {
                current: 0,
                status: vec![Status::Ready],
                replay,
                cursor: 0,
                trace: Vec::new(),
                preemptions: 0,
                max_preemptions,
                abort: false,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers a newly spawned controlled thread; returns its id.
    pub(crate) fn register(&self) -> usize {
        let mut st = self.st.lock().unwrap();
        st.status.push(Status::Ready);
        st.status.len() - 1
    }

    /// A scheduling point: possibly hand the token to another thread
    /// and sleep until it returns. `yielding` marks `me` as descheduled
    /// until no other thread is runnable.
    pub(crate) fn switch(&self, me: usize, yielding: bool) {
        let mut st = self.st.lock().unwrap();
        if st.abort {
            drop(st);
            panic!("{ABORT}");
        }
        if yielding {
            st.status[me] = Status::Yielded;
        }
        let next = st.decide(me);
        if st.abort {
            self.cv.notify_all();
            drop(st);
            panic!("{ABORT}");
        }
        if next != me {
            st.current = next;
            self.cv.notify_all();
            loop {
                if st.abort {
                    drop(st);
                    panic!("{ABORT}");
                }
                if st.current == me {
                    break;
                }
                st = self.cv.wait(st).unwrap();
            }
        }
        st.status[me] = Status::Ready;
    }

    /// First wait of a freshly spawned thread: sleep until the
    /// scheduler hands it the token for the first time.
    pub(crate) fn wait_for_token(&self, me: usize) {
        let mut st = self.st.lock().unwrap();
        loop {
            if st.abort {
                drop(st);
                panic!("{ABORT}");
            }
            if st.current == me {
                break;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Blocks `me` until `target` finishes, scheduling others meanwhile.
    pub(crate) fn join_point(&self, me: usize, target: usize) {
        let mut st = self.st.lock().unwrap();
        if st.abort {
            drop(st);
            panic!("{ABORT}");
        }
        if st.status.get(target) != Some(&Status::Done) {
            st.status[me] = Status::Blocked(target);
        }
        let next = st.decide(me);
        if st.abort {
            self.cv.notify_all();
            drop(st);
            panic!("{ABORT}");
        }
        if next != me {
            st.current = next;
            self.cv.notify_all();
            loop {
                if st.abort {
                    drop(st);
                    panic!("{ABORT}");
                }
                if st.current == me {
                    break;
                }
                st = self.cv.wait(st).unwrap();
            }
        }
        st.status[me] = Status::Ready;
    }

    /// Normal completion of a spawned thread's closure: mark done,
    /// release joiners, pass the token on.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.st.lock().unwrap();
        st.status[me] = Status::Done;
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(me) {
                *s = Status::Ready;
            }
        }
        if st.abort || st.all_done() {
            self.cv.notify_all();
            return;
        }
        let next = st.decide(me);
        if !st.abort {
            st.current = next;
        }
        self.cv.notify_all();
    }

    /// Tears a thread down without scheduling (abort path).
    pub(crate) fn mark_done_quiet(&self, me: usize) {
        let mut st = self.st.lock().unwrap();
        st.status[me] = Status::Done;
        self.cv.notify_all();
    }

    /// Records a controlled thread's panic and wakes everyone so the
    /// execution can unwind. The ABORT sentinel means the thread was
    /// already being torn down and carries no new failure.
    pub(crate) fn child_panic(&self, me: usize, message: String) {
        let mut st = self.st.lock().unwrap();
        st.status[me] = Status::Done;
        if message != ABORT {
            st.abort = true;
            if st.failure.is_none() {
                st.failure = Some(message);
            }
        }
        self.cv.notify_all();
    }

    /// Called on the model thread after the closure returns (or
    /// panics): mark main done, keep scheduling the remaining threads,
    /// and wait until every controlled thread has finished or the
    /// execution aborted.
    fn main_finish_and_drain(&self, main_panicked: bool) {
        let mut st = self.st.lock().unwrap();
        if main_panicked {
            st.abort = true;
            if st.failure.is_none() {
                st.failure = Some("the model closure panicked".to_string());
            }
        }
        st.status[0] = Status::Done;
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(0) {
                *s = Status::Ready;
            }
        }
        if !st.abort && !st.all_done() {
            let next = st.decide(0);
            if !st.abort {
                st.current = next;
            }
        }
        self.cv.notify_all();
        while !st.all_done() {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn take_outcome(&self) -> (Vec<Decision>, Option<String>) {
        let mut st = self.st.lock().unwrap();
        (std::mem::take(&mut st.trace), st.failure.take())
    }
}

pub(crate) mod tls {
    use super::Rt;
    use std::cell::RefCell;
    use std::sync::Arc;

    thread_local! {
        static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
    }

    pub(crate) fn enter(rt: Arc<Rt>, tid: usize) {
        CURRENT.with(|c| *c.borrow_mut() = Some((rt, tid)));
    }

    pub(crate) fn exit() {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }

    pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
        CURRENT.with(|c| c.borrow().clone())
    }
}

/// A scheduling point for the calling thread; no-op outside a model.
pub(crate) fn point() {
    if let Some((rt, me)) = tls::current() {
        rt.switch(me, false);
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn render_schedule(trace: &[Decision]) -> String {
    trace
        .iter()
        .map(|d| d.chosen.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_schedule(s: &str) -> Vec<Decision> {
    s.split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| Decision {
            chosen: p
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("LOOM_REPLAY: bad thread id {p:?}")),
            alternatives: Vec::new(),
        })
        .collect()
}

/// Moves the search to the next unexplored branch: drop trailing
/// decisions with no alternatives, then take the first alternative of
/// the deepest branch point. `None` when the space is exhausted.
fn backtrack(mut trace: Vec<Decision>) -> Option<Vec<Decision>> {
    while let Some(d) = trace.last_mut() {
        if d.alternatives.is_empty() {
            trace.pop();
            continue;
        }
        d.chosen = d.alternatives.remove(0);
        return Some(trace);
    }
    None
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Checks every schedule of `f` (up to the preemption bound): runs it
/// repeatedly, exploring a new interleaving of its threads' scheduling
/// points each time, and panics with the failing schedule if any
/// execution panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 250_000);
    let pinned = std::env::var("LOOM_REPLAY").ok();
    let mut replay: Vec<Decision> = match &pinned {
        Some(s) => parse_schedule(s),
        None => Vec::new(),
    };
    let mut iterations: usize = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom stand-in: exceeded {max_iterations} executions; \
             shrink the model or raise LOOM_MAX_ITERATIONS"
        );
        let rt = Arc::new(Rt::new(std::mem::take(&mut replay), max_preemptions));
        tls::enter(Arc::clone(&rt), 0);
        let result = catch_unwind(AssertUnwindSafe(&f));
        rt.main_finish_and_drain(result.is_err());
        tls::exit();
        let (trace, failure) = rt.take_outcome();
        let failed = result.is_err() || failure.is_some();
        if failed {
            eprintln!("loom stand-in: failing execution after {iterations} schedule(s)");
            eprintln!(
                "loom stand-in: replay with LOOM_REPLAY={}",
                render_schedule(&trace)
            );
            match result {
                Err(p) => {
                    if panic_message(p.as_ref()) == ABORT {
                        panic!(
                            "loom stand-in: {}",
                            failure.unwrap_or_else(|| "a model thread failed".to_string())
                        );
                    }
                    resume_unwind(p);
                }
                Ok(()) => panic!(
                    "loom stand-in: {}",
                    failure.unwrap_or_else(|| "a model thread failed".to_string())
                ),
            }
        }
        if pinned.is_some() {
            return;
        }
        match backtrack(trace) {
            Some(next) => replay = next,
            None => return,
        }
    }
}
