//! Offline stand-in for the `loom` crate: exhaustive interleaving
//! exploration for the sync primitives the workspace models.
//!
//! [`model`] runs a closure under a token-passing scheduler: every
//! atomic access, fence, spawn, join and yield is a *scheduling point*
//! where exactly one thread holds the token, and the explorer drives a
//! depth-first search over which runnable thread gets it next. The
//! search replays a committed decision prefix, extends it greedily
//! (preferring the currently running thread), and backtracks through
//! recorded alternatives until the space is exhausted.
//!
//! Differences from real loom, stated up front:
//!
//! * Interleavings are explored under **sequential consistency** — the
//!   token serializes every access, so weak-memory reorderings that a
//!   relaxed/acquire/release program could exhibit on hardware are not
//!   modeled. Interleaving bugs (torn multi-word reads, lost updates,
//!   double-claims) are exactly what it does catch.
//! * The search is **bounded-preemption** (`LOOM_MAX_PREEMPTIONS`,
//!   default 2): switching away from a thread that could have kept
//!   running costs one unit of budget; forced switches (the running
//!   thread blocked, yielded or finished) are free. Most concurrency
//!   bugs manifest within two preemptions, and the bound keeps the
//!   state space tractable without partial-order reduction.
//! * A thread that calls [`thread::yield_now`] is descheduled until no
//!   other thread is runnable — that is what makes spin loops explored
//!   rather than livelocked.
//!
//! On failure the runtime prints the decision sequence that produced
//! it; re-running with `LOOM_REPLAY=<that string>` pins the explorer to
//! the single failing schedule for debugging.

mod rt;
pub mod sync;
pub mod thread;

pub mod model {
    pub use crate::rt::model;
}

pub use rt::model;

#[cfg(test)]
mod tests {
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::Arc;
    use crate::thread;
    use std::sync::atomic::AtomicBool as StdBool;
    use std::sync::atomic::AtomicU64 as StdU64;
    use std::sync::atomic::Ordering::SeqCst as StdSeqCst;
    use std::sync::Arc as StdArc;

    #[test]
    fn atomics_work_outside_a_model() {
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.swap(9, Ordering::SeqCst), 3);
        assert_eq!(a.load(Ordering::SeqCst), 9);
        a.store(4, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 4);
        crate::sync::atomic::fence(Ordering::SeqCst);
    }

    #[test]
    fn explorer_visits_more_than_one_schedule() {
        let runs = StdArc::new(StdU64::new(0));
        let counter = StdArc::clone(&runs);
        crate::model(move || {
            counter.fetch_add(1, StdSeqCst);
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::clone(&a);
            let t = thread::spawn(move || {
                b.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        let n = runs.load(StdSeqCst);
        assert!(n > 1, "only {n} schedule(s) explored");
        assert!(n < 10_000, "runaway exploration: {n} schedules");
    }

    #[test]
    fn explorer_finds_the_lost_update() {
        // Two unsynchronized read-modify-write sequences: some schedule
        // must interleave them and lose one increment.
        let seen = StdArc::new(StdBool::new(false));
        let flag = StdArc::clone(&seen);
        crate::model(move || {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::clone(&a);
            let t = thread::spawn(move || {
                let v = b.load(Ordering::SeqCst);
                b.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            if a.load(Ordering::SeqCst) == 1 {
                flag.store(true, StdSeqCst);
            }
        });
        assert!(seen.load(StdSeqCst), "lost update was never explored");
    }

    #[test]
    fn failing_schedules_panic_out_of_model() {
        let caught = std::panic::catch_unwind(|| {
            crate::model(|| {
                let a = Arc::new(AtomicU64::new(0));
                let b = Arc::clone(&a);
                let t = thread::spawn(move || {
                    let v = b.load(Ordering::SeqCst);
                    b.store(v + 1, Ordering::SeqCst);
                });
                let v = a.load(Ordering::SeqCst);
                a.store(v + 1, Ordering::SeqCst);
                t.join().unwrap();
                // Wrong on the lost-update schedule; the explorer must
                // find it and surface the panic.
                assert_eq!(a.load(Ordering::SeqCst), 2);
            });
        });
        assert!(caught.is_err(), "explorer missed the failing schedule");
    }

    #[test]
    fn spin_loops_with_yield_terminate() {
        crate::model(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let setter = Arc::clone(&flag);
            let t = thread::spawn(move || {
                setter.store(1, Ordering::SeqCst);
            });
            while flag.load(Ordering::SeqCst) == 0 {
                thread::yield_now();
            }
            t.join().unwrap();
        });
    }
}
