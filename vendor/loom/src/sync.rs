//! Model-aware sync primitives: drop-in spellings of the `std::sync`
//! items the workspace swaps in under its `loom` feature.
//!
//! Inside a model every operation is a scheduling point; the values
//! themselves are held in real `SeqCst` atomics, which is exactly the
//! memory model the serialized scheduler explores. Outside a model the
//! scheduling hook is a no-op and these behave like `std` atomics.

pub use std::sync::Arc;

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    /// Model-checked `u64` atomic. The caller's `Ordering` argument is
    /// accepted for API parity but the shim always executes `SeqCst`
    /// (see the crate docs: interleavings, not weak memory).
    #[derive(Debug, Default)]
    pub struct AtomicU64 {
        inner: std::sync::atomic::AtomicU64,
    }

    impl AtomicU64 {
        /// Creates a new atomic.
        pub fn new(v: u64) -> AtomicU64 {
            AtomicU64 {
                inner: std::sync::atomic::AtomicU64::new(v),
            }
        }

        /// Loads the value (scheduling point).
        pub fn load(&self, _order: Ordering) -> u64 {
            rt::point();
            self.inner.load(Ordering::SeqCst)
        }

        /// Stores a value (scheduling point).
        pub fn store(&self, val: u64, _order: Ordering) {
            rt::point();
            self.inner.store(val, Ordering::SeqCst);
        }

        /// Swaps in a value, returning the previous one (scheduling
        /// point).
        pub fn swap(&self, val: u64, _order: Ordering) -> u64 {
            rt::point();
            self.inner.swap(val, Ordering::SeqCst)
        }

        /// Adds to the value, returning the previous one (scheduling
        /// point).
        pub fn fetch_add(&self, val: u64, _order: Ordering) -> u64 {
            rt::point();
            self.inner.fetch_add(val, Ordering::SeqCst)
        }

        /// Compare-and-exchange (scheduling point).
        pub fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<u64, u64> {
            rt::point();
            self.inner
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        }
    }

    /// Memory fence: a pure scheduling point under the shim (the
    /// serialized scheduler is already sequentially consistent).
    pub fn fence(_order: Ordering) {
        rt::point();
    }
}
