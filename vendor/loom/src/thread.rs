//! Controlled threads: real OS threads whose execution is serialized
//! by the model scheduler. Outside a model everything falls through to
//! `std::thread`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rt;

/// Handle to a spawned (possibly model-controlled) thread.
pub struct JoinHandle<T> {
    /// Controlled thread id, or `usize::MAX` outside a model.
    tid: usize,
    inner: std::thread::JoinHandle<Option<T>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a
    /// model this is a scheduling point that blocks the calling thread
    /// until the target's closure has completed.
    pub fn join(self) -> std::thread::Result<T> {
        if self.tid != usize::MAX {
            if let Some((rt, me)) = rt::tls::current() {
                rt.join_point(me, self.tid);
            }
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new(
                "loom stand-in: thread torn down after a model failure".to_string(),
            )),
            Err(p) => Err(p),
        }
    }
}

/// Spawns a thread. Inside a model the thread is registered with the
/// scheduler and does not run a single step until it is handed the
/// token; outside a model it is a plain `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::tls::current() {
        None => JoinHandle {
            tid: usize::MAX,
            inner: std::thread::spawn(move || Some(f())),
        },
        Some((rt, me)) => {
            let tid = rt.register();
            let rt2 = std::sync::Arc::clone(&rt);
            let inner = std::thread::spawn(move || -> Option<T> {
                rt::tls::enter(std::sync::Arc::clone(&rt2), tid);
                if catch_unwind(AssertUnwindSafe(|| rt2.wait_for_token(tid))).is_err() {
                    // Aborted before ever running.
                    rt2.mark_done_quiet(tid);
                    return None;
                }
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        rt2.finish(tid);
                        Some(v)
                    }
                    Err(p) => {
                        rt2.child_panic(tid, crate::rt::panic_message(p.as_ref()));
                        None
                    }
                }
            });
            // Spawning is itself a scheduling point: the new thread may
            // legally run before the spawner's next step.
            rt.switch(me, false);
            JoinHandle { tid, inner }
        }
    }
}

/// Deschedules the calling thread until no other thread is runnable —
/// mandatory inside model-checked spin loops, where it is what lets
/// the thread being spun on make progress. No-op outside a model.
pub fn yield_now() {
    match rt::tls::current() {
        Some((rt, me)) => rt.switch(me, true),
        None => std::thread::yield_now(),
    }
}
