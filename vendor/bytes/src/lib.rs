//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the tiny slice of the `bytes` API it actually uses:
//! [`Bytes`], an immutable, cheaply clonable byte container. Payloads are
//! held behind an `Arc<[u8]>`, so `clone()` is a reference-count bump
//! exactly like the real crate's shared-buffer fast path.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
