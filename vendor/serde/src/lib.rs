//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde as derive markers — nothing is ever
//! serialized through the serde data model (the repo's JSON export is
//! hand-rolled; see `conzone_sim::json`). This stub provides the two
//! trait names plus the derive macros so `#[derive(Serialize,
//! Deserialize)]` compiles without a crates.io mirror.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
