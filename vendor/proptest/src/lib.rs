//! Offline mini property-testing runner.
//!
//! The build environment cannot reach a crates.io mirror, so this crate
//! reimplements the slice of the `proptest` API the workspace uses: the
//! `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!` macros,
//! `Strategy` with `prop_map`, integer-range and tuple strategies,
//! `any::<T>()`, and `prop::collection::vec`. Cases are generated from a
//! deterministic per-test seed (FNV hash of the test path), so failures
//! reproduce exactly across runs; there is no shrinking.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner plumbing: configuration, RNG, and case-level errors.

    /// Subset of `proptest::test_runner::Config` (struct-update friendly).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Bound on generated-but-rejected cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject,
        /// An assertion failed; the test fails.
        Fail(String),
    }

    /// Deterministic splitmix64 generator used for all case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }
    }

    /// Stable seed for a test, derived from its full path (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Object safe: combinators take `self` by value behind `Sized`
    /// bounds, so `Box<dyn Strategy<Value = V>>` works (needed by
    /// `prop_oneof!`).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (type erasure).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    /// Helper used by `prop_oneof!` to erase arm types with good
    /// inference.
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Weighted union of same-valued strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a non-zero total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    /// `any::<T>()` support marker.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for the full value domain of `T`.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// Generates arbitrary values of `T` over its whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($n:ident : $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec` resolves.
    pub use crate as prop;
}

/// Defines property tests. Supports the forms this workspace uses:
/// an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut rng = $crate::test_runner::TestRng::new(seed);
                let mut passed = 0u32;
                let mut rejected = 0u32;
                let mut case = 0u64;
                while passed < cfg.cases {
                    case += 1;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {
                            rejected += 1;
                            if rejected > cfg.max_global_rejects {
                                panic!(
                                    "{}: too many prop_assume! rejects ({})",
                                    stringify!($name),
                                    rejected,
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {} (seed {:#x}): {}",
                                stringify!($name),
                                case,
                                seed,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects the current case (filters inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted (or unweighted) choice among strategies producing one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn map_and_oneof_compose(v in prop::collection::vec(
            prop_oneof![2 => (0u64..10).prop_map(|x| x * 2), 1 => 100u64..200],
            1..50,
        )) {
            for x in v {
                prop_assert!(x % 2 == 0 || (100..200).contains(&x), "x = {x}");
            }
        }

        #[test]
        fn assume_filters(x in any::<u8>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
