//! The reduced recursive-descent parser behind [`crate::parse_file`].
//!
//! The parser is total: every token sequence the lexer produces parses
//! into *some* item (worst case an [`ItemVerbatim`]), and every branch
//! consumes at least one token, so it always terminates. Angle-bracket
//! awareness (needed to split `BTreeMap<u64, Vec<u8>>` field lists at
//! the right commas) treats a `>` as closing unless it completes a
//! `->` / `=>` arrow, which the lexer marks via `Joint` spacing on the
//! preceding punct.

use crate::{
    Arm, Attribute, Block, Expr, ExprGroup, ExprMacro, ExprMatch, Field, File, Item, ItemConst,
    ItemEnum, ItemFn, ItemImpl, ItemMacro, ItemMacroRules, ItemMod, ItemStatic, ItemStruct,
    ItemTrait, ItemVerbatim, TokenRun, TypeTokens, Variant,
};
use proc_macro2::{Delimiter, Group, Spacing, Span, TokenStream, TokenTree};

/// Entry point: parses a lexed stream into a [`File`].
pub(crate) fn parse_items_from_stream(stream: TokenStream) -> File {
    let (attrs, items) = {
        let mut cur = Cursor::new(stream.tokens());
        let mut attrs = Vec::new();
        while let Some(a) = cur.try_inner_attr() {
            attrs.push(a);
        }
        let items = parse_items(&mut cur);
        (attrs, items)
    };
    File {
        attrs,
        items,
        tokens: stream,
    }
}

struct Cursor<'a> {
    toks: &'a [TokenTree],
    pos: usize,
}

fn brace(t: &TokenTree) -> Option<&Group> {
    t.as_group().filter(|g| g.delimiter() == Delimiter::Brace)
}

fn paren(t: &TokenTree) -> Option<&Group> {
    t.as_group()
        .filter(|g| g.delimiter() == Delimiter::Parenthesis)
}

fn joint_punct(t: &TokenTree, ch: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == ch && p.spacing() == Spacing::Joint)
}

/// Whether `tokens[i]` is a `>` completing a `->` or `=>` arrow.
fn closes_arrow(tokens: &[TokenTree], i: usize) -> bool {
    i > 0 && (joint_punct(&tokens[i - 1], '-') || joint_punct(&tokens[i - 1], '='))
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [TokenTree]) -> Cursor<'a> {
        Cursor { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&'a TokenTree> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&'a TokenTree> {
        self.toks.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Byte offset one past the last consumed token.
    fn last_end(&self) -> usize {
        self.pos
            .checked_sub(1)
            .and_then(|i| self.toks.get(i))
            .map_or(0, |t| t.span().hi)
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek().and_then(TokenTree::as_ident) == Some(text)
    }

    fn at_punct(&self, ch: char) -> bool {
        self.peek().and_then(TokenTree::as_punct) == Some(ch)
    }

    /// Consumes an identifier, returning its text and span; a synthetic
    /// empty name keeps the parser total on malformed input.
    fn take_name(&mut self) -> (String, Span) {
        match self.peek() {
            Some(TokenTree::Ident(i)) => {
                let out = (i.text().to_string(), i.span());
                self.bump();
                out
            }
            t => (String::new(), t.map_or_else(Span::call_site, |t| t.span())),
        }
    }

    /// Consumes `#![…]` if present.
    fn try_inner_attr(&mut self) -> Option<Attribute> {
        if self.at_punct('#')
            && self.peek_at(1).and_then(TokenTree::as_punct) == Some('!')
            && self
                .peek_at(2)
                .and_then(TokenTree::as_group)
                .is_some_and(|g| g.delimiter() == Delimiter::Bracket)
        {
            let hash = self.bump().map_or_else(Span::call_site, |t| t.span());
            self.bump();
            let g = self.bump().and_then(TokenTree::as_group).cloned();
            return g.map(|g| attr_from_group(true, hash, &g));
        }
        None
    }

    /// Consumes `#[…]*` outer attributes.
    fn parse_outer_attrs(&mut self) -> Vec<Attribute> {
        let mut out = Vec::new();
        while self.at_punct('#')
            && self
                .peek_at(1)
                .and_then(TokenTree::as_group)
                .is_some_and(|g| g.delimiter() == Delimiter::Bracket)
        {
            let hash = self.bump().map_or_else(Span::call_site, |t| t.span());
            if let Some(TokenTree::Group(g)) = self.bump() {
                out.push(attr_from_group(false, hash, g));
            }
        }
        out
    }

    /// Whether the cursor sits on `->` (needed before return types).
    fn at_fat_or_thin_arrow(&self, head: char) -> bool {
        self.peek().is_some_and(|t| joint_punct(t, head))
            && self.peek_at(1).and_then(TokenTree::as_punct) == Some('>')
    }

    /// Consumes `<…>` starting at `<`, returning the tokens between the
    /// brackets (exclusive).
    fn consume_angles(&mut self) -> Vec<TokenTree> {
        let mut out = Vec::new();
        self.bump(); // `<`
        let mut depth = 1usize;
        while let Some(t) = self.peek() {
            match t.as_punct() {
                Some('<') => depth += 1,
                Some('>') if !closes_arrow(self.toks, self.pos) => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return out;
                    }
                }
                _ => {}
            }
            out.push(t.clone());
            self.bump();
        }
        out
    }

    /// Remaining tokens, cloned.
    fn rest(&self) -> Vec<TokenTree> {
        self.toks[self.pos.min(self.toks.len())..].to_vec()
    }
}

fn attr_from_group(inner: bool, span: Span, g: &Group) -> Attribute {
    let toks = g.stream().tokens();
    let mut path = String::new();
    let mut i = 0;
    while let Some(id) = toks.get(i).and_then(TokenTree::as_ident) {
        path.push_str(id);
        i += 1;
        if toks.get(i).is_some_and(|t| joint_punct(t, ':'))
            && toks.get(i + 1).and_then(TokenTree::as_punct) == Some(':')
        {
            path.push_str("::");
            i += 2;
        } else {
            break;
        }
    }
    Attribute {
        inner,
        path,
        tokens: toks[i..].to_vec(),
        span,
    }
}

/// Splits at top-level commas, treating `<…>` generic brackets as
/// nesting (delimited groups nest automatically as single tokens).
fn split_commas_angle_aware(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut chunk = Vec::new();
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match t.as_punct() {
            Some('<') => depth += 1,
            Some('>') if depth > 0 && !closes_arrow(tokens, i) => depth -= 1,
            Some(',') if depth == 0 => {
                out.push(std::mem::take(&mut chunk));
                continue;
            }
            _ => {}
        }
        chunk.push(t.clone());
    }
    if !chunk.is_empty() {
        out.push(chunk);
    }
    out
}

/// Splits at top-level commas with no angle tracking (for enum variant
/// lists, where a `<` can be a comparison inside a discriminant).
fn split_commas_plain(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut chunk = Vec::new();
    for t in tokens {
        if t.as_punct() == Some(',') {
            out.push(std::mem::take(&mut chunk));
        } else {
            chunk.push(t.clone());
        }
    }
    if !chunk.is_empty() {
        out.push(chunk);
    }
    out
}

fn parse_items(cur: &mut Cursor<'_>) -> Vec<Item> {
    let mut out = Vec::new();
    loop {
        if cur.at_punct(';') {
            cur.bump();
            continue;
        }
        if cur.try_inner_attr().is_some() {
            continue;
        }
        if cur.at_end() {
            return out;
        }
        out.push(parse_item(cur));
    }
}

fn parse_item(cur: &mut Cursor<'_>) -> Item {
    let attrs = cur.parse_outer_attrs();
    let start = cur.pos;
    let anchor = cur.peek().map_or_else(Span::call_site, |t| t.span());
    let mut public = false;
    loop {
        match cur.peek().and_then(TokenTree::as_ident) {
            Some("pub") => {
                public = true;
                cur.bump();
                if cur.peek().is_some_and(|t| paren(t).is_some()) {
                    cur.bump();
                }
            }
            Some("default" | "unsafe" | "async") => {
                cur.bump();
            }
            Some("extern") if cur.peek_at(1).and_then(TokenTree::as_ident) != Some("crate") => {
                cur.bump();
                if matches!(cur.peek(), Some(TokenTree::Literal(_))) {
                    cur.bump();
                }
            }
            Some("const")
                if matches!(
                    cur.peek_at(1).and_then(TokenTree::as_ident),
                    Some("fn" | "unsafe" | "extern" | "async")
                ) =>
            {
                cur.bump();
            }
            _ => break,
        }
    }
    match cur.peek().and_then(TokenTree::as_ident) {
        Some("fn") => Item::Fn(parse_fn(cur, attrs, anchor, public)),
        Some("mod") => Item::Mod(parse_mod(cur, attrs, anchor, public)),
        Some("struct") => Item::Struct(parse_struct(cur, attrs, anchor, public)),
        Some("enum") => Item::Enum(parse_enum(cur, attrs, anchor, public)),
        Some("impl") => Item::Impl(parse_impl(cur, attrs, anchor)),
        Some("trait") => Item::Trait(parse_trait(cur, attrs, anchor, public)),
        Some("static") => Item::Static(parse_static(cur, attrs, anchor, public)),
        Some("const") => Item::Const(parse_const(cur, attrs, anchor, public)),
        Some("macro_rules") if cur.peek_at(1).and_then(TokenTree::as_punct) == Some('!') => {
            Item::MacroRules(parse_macro_rules(cur, attrs, anchor))
        }
        Some("use") => parse_verbatim(cur, attrs, anchor, start, "use"),
        Some("type") => parse_verbatim(cur, attrs, anchor, start, "type"),
        Some("extern") => parse_verbatim(cur, attrs, anchor, start, "extern"),
        Some(_) if macro_invocation_ahead(cur) => Item::Macro(parse_item_macro(cur, attrs, anchor)),
        _ => parse_verbatim(cur, attrs, anchor, start, "unknown"),
    }
}

/// Consumes an unmodelled item: everything through the next top-level
/// `;`, or through a brace group that isn't followed by `;` (covers
/// `use a::{b, c};`, `union U { … }` and `extern "C" { … }` alike).
fn parse_verbatim(
    cur: &mut Cursor<'_>,
    attrs: Vec<Attribute>,
    span: Span,
    start: usize,
    kind: &'static str,
) -> Item {
    loop {
        match cur.bump() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break,
            Some(t) if brace(t).is_some() => {
                if !cur.at_punct(';') {
                    break;
                }
            }
            Some(_) => {}
        }
    }
    Item::Verbatim(ItemVerbatim {
        attrs,
        span,
        end_byte: cur.last_end(),
        kind,
        tokens: cur.toks[start..cur.pos].to_vec(),
    })
}

fn parse_fn(cur: &mut Cursor<'_>, attrs: Vec<Attribute>, anchor: Span, public: bool) -> ItemFn {
    let fn_span = cur.bump().map_or(anchor, |t| t.span());
    let (name, name_span) = cur.take_name();
    let mut generics = Vec::new();
    if cur.at_punct('<') {
        generics = cur.consume_angles();
    }
    let mut params = Vec::new();
    if let Some(g) = cur.peek().and_then(paren) {
        params = g.stream().tokens().to_vec();
        cur.bump();
    }
    let param_types = extract_param_types(&params);
    let mut ret = TypeTokens::default();
    if cur.at_fat_or_thin_arrow('-') {
        cur.bump();
        cur.bump();
        while let Some(t) = cur.peek() {
            if t.as_ident() == Some("where") || t.as_punct() == Some(';') || brace(t).is_some() {
                break;
            }
            ret.tokens.push(t.clone());
            cur.bump();
        }
    }
    let mut where_clause = Vec::new();
    if cur.at_ident("where") {
        cur.bump();
        while let Some(t) = cur.peek() {
            if t.as_punct() == Some(';') || brace(t).is_some() {
                break;
            }
            where_clause.push(t.clone());
            cur.bump();
        }
    }
    let mut body = None;
    if let Some(g) = cur.peek().and_then(brace) {
        body = Some(Block {
            span: g.span(),
            exprs: parse_exprs(g.stream().tokens()),
        });
        cur.bump();
    } else if cur.at_punct(';') {
        cur.bump();
    }
    ItemFn {
        attrs,
        span: anchor,
        fn_span,
        end_byte: cur.last_end(),
        public,
        name,
        name_span,
        generics,
        params,
        param_types,
        ret,
        where_clause,
        body,
    }
}

/// The declared type of each non-`self` parameter: the tokens after the
/// first top-level `:` of each comma-separated chunk (receivers and
/// untyped params have no such colon and are skipped).
fn extract_param_types(params: &[TokenTree]) -> Vec<TypeTokens> {
    split_commas_angle_aware(params)
        .into_iter()
        .filter_map(|chunk| {
            let mut i = 0;
            while i < chunk.len() {
                if chunk[i].as_punct() == Some(':') {
                    if joint_punct(&chunk[i], ':')
                        && chunk.get(i + 1).and_then(TokenTree::as_punct) == Some(':')
                    {
                        i += 2;
                        continue;
                    }
                    return Some(TypeTokens {
                        tokens: chunk[i + 1..].to_vec(),
                    });
                }
                i += 1;
            }
            None
        })
        .filter(|t| !t.is_empty())
        .collect()
}

fn parse_mod(cur: &mut Cursor<'_>, attrs: Vec<Attribute>, anchor: Span, public: bool) -> ItemMod {
    cur.bump(); // `mod`
    let (name, _) = cur.take_name();
    let mut content = None;
    if let Some(g) = cur.peek().and_then(brace) {
        let mut inner = Cursor::new(g.stream().tokens());
        content = Some(parse_items(&mut inner));
        cur.bump();
    } else if cur.at_punct(';') {
        cur.bump();
    }
    ItemMod {
        attrs,
        span: anchor,
        end_byte: cur.last_end(),
        public,
        name,
        content,
    }
}

fn parse_struct(
    cur: &mut Cursor<'_>,
    attrs: Vec<Attribute>,
    anchor: Span,
    public: bool,
) -> ItemStruct {
    cur.bump(); // `struct`
    let (name, name_span) = cur.take_name();
    if cur.at_punct('<') {
        cur.consume_angles();
    }
    let mut fields = Vec::new();
    while let Some(t) = cur.peek() {
        if let Some(g) = paren(t) {
            fields = parse_tuple_fields(g.stream().tokens());
            cur.bump();
            // Optional where clause between tuple fields and `;`.
            while !cur.at_end() && !cur.at_punct(';') {
                cur.bump();
            }
            cur.bump();
            break;
        }
        if let Some(g) = brace(t) {
            fields = parse_named_fields(g.stream().tokens());
            cur.bump();
            break;
        }
        if t.as_punct() == Some(';') {
            cur.bump();
            break;
        }
        cur.bump(); // where-clause tokens
    }
    ItemStruct {
        attrs,
        span: anchor,
        end_byte: cur.last_end(),
        public,
        name,
        name_span,
        fields,
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    split_commas_angle_aware(tokens)
        .iter()
        .filter_map(|chunk| {
            let mut cur = Cursor::new(chunk);
            let attrs = cur.parse_outer_attrs();
            let mut public = false;
            if cur.at_ident("pub") {
                public = true;
                cur.bump();
                if cur.peek().is_some_and(|t| paren(t).is_some()) {
                    cur.bump();
                }
            }
            let TokenTree::Ident(id) = cur.peek()? else {
                return None;
            };
            let (name, span) = (id.text().to_string(), id.span());
            cur.bump();
            if cur.at_punct(':') {
                cur.bump();
            }
            Some(Field {
                attrs,
                span,
                public,
                name: Some(name),
                ty: TypeTokens { tokens: cur.rest() },
            })
        })
        .collect()
}

fn parse_tuple_fields(tokens: &[TokenTree]) -> Vec<Field> {
    split_commas_angle_aware(tokens)
        .iter()
        .filter_map(|chunk| {
            let mut cur = Cursor::new(chunk);
            let attrs = cur.parse_outer_attrs();
            let mut public = false;
            if cur.at_ident("pub") {
                public = true;
                cur.bump();
                if cur.peek().is_some_and(|t| paren(t).is_some()) {
                    cur.bump();
                }
            }
            let span = cur.peek()?.span();
            Some(Field {
                attrs,
                span,
                public,
                name: None,
                ty: TypeTokens { tokens: cur.rest() },
            })
        })
        .collect()
}

fn parse_enum(cur: &mut Cursor<'_>, attrs: Vec<Attribute>, anchor: Span, public: bool) -> ItemEnum {
    cur.bump(); // `enum`
    let (name, name_span) = cur.take_name();
    if cur.at_punct('<') {
        cur.consume_angles();
    }
    let mut variants = Vec::new();
    while let Some(t) = cur.peek() {
        if let Some(g) = brace(t) {
            variants = parse_variants(g.stream().tokens());
            cur.bump();
            break;
        }
        if t.as_punct() == Some(';') {
            cur.bump();
            break;
        }
        cur.bump(); // where-clause tokens
    }
    ItemEnum {
        attrs,
        span: anchor,
        end_byte: cur.last_end(),
        public,
        name,
        name_span,
        variants,
    }
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_commas_plain(tokens)
        .iter()
        .filter_map(|chunk| {
            let mut cur = Cursor::new(chunk);
            let attrs = cur.parse_outer_attrs();
            let TokenTree::Ident(id) = cur.peek()? else {
                return None;
            };
            let (name, span) = (id.text().to_string(), id.span());
            cur.bump();
            let fields = match cur.peek() {
                Some(t) if paren(t).is_some() => {
                    parse_tuple_fields(paren(t).map_or(&[], |g| g.stream().tokens()))
                }
                Some(t) if brace(t).is_some() => {
                    parse_named_fields(brace(t).map_or(&[], |g| g.stream().tokens()))
                }
                _ => Vec::new(), // unit variant or `= discriminant`
            };
            Some(Variant {
                attrs,
                span,
                name,
                fields,
            })
        })
        .collect()
}

fn parse_impl(cur: &mut Cursor<'_>, attrs: Vec<Attribute>, anchor: Span) -> ItemImpl {
    cur.bump(); // `impl`
    let mut header = Vec::new();
    let mut items = Vec::new();
    while let Some(t) = cur.peek() {
        if let Some(g) = brace(t) {
            let mut inner = Cursor::new(g.stream().tokens());
            items = parse_items(&mut inner);
            cur.bump();
            break;
        }
        header.push(t.clone());
        cur.bump();
    }
    ItemImpl {
        attrs,
        span: anchor,
        end_byte: cur.last_end(),
        header,
        items,
    }
}

fn parse_trait(
    cur: &mut Cursor<'_>,
    attrs: Vec<Attribute>,
    anchor: Span,
    public: bool,
) -> ItemTrait {
    cur.bump(); // `trait`
    let (name, _) = cur.take_name();
    let mut header = Vec::new();
    let mut items = Vec::new();
    while let Some(t) = cur.peek() {
        if let Some(g) = brace(t) {
            let mut inner = Cursor::new(g.stream().tokens());
            items = parse_items(&mut inner);
            cur.bump();
            break;
        }
        header.push(t.clone());
        cur.bump();
    }
    ItemTrait {
        attrs,
        span: anchor,
        end_byte: cur.last_end(),
        public,
        name,
        header,
        items,
    }
}

/// Shared tail of `static` / `const`: `name : ty = init ;`.
fn parse_typed_value(cur: &mut Cursor<'_>) -> (String, TypeTokens, Vec<Expr>) {
    let (name, _) = cur.take_name();
    if cur.at_punct(':') {
        cur.bump();
    }
    let mut ty = TypeTokens::default();
    let mut depth = 0usize;
    while let Some(t) = cur.peek() {
        match t.as_punct() {
            Some(';') => break,
            Some('<') => depth += 1,
            Some('>') if depth > 0 && !closes_arrow(cur.toks, cur.pos) => depth -= 1,
            Some('=') if depth == 0 => break,
            _ => {}
        }
        ty.tokens.push(t.clone());
        cur.bump();
    }
    if cur.at_punct('=') {
        cur.bump();
    }
    let mut init_toks = Vec::new();
    while let Some(t) = cur.peek() {
        if t.as_punct() == Some(';') {
            break;
        }
        init_toks.push(t.clone());
        cur.bump();
    }
    if cur.at_punct(';') {
        cur.bump();
    }
    (name, ty, parse_exprs(&init_toks))
}

fn parse_static(
    cur: &mut Cursor<'_>,
    attrs: Vec<Attribute>,
    anchor: Span,
    public: bool,
) -> ItemStatic {
    cur.bump(); // `static`
    let mut mutable = false;
    if cur.at_ident("mut") {
        mutable = true;
        cur.bump();
    }
    let (name, ty, init) = parse_typed_value(cur);
    ItemStatic {
        attrs,
        span: anchor,
        end_byte: cur.last_end(),
        public,
        mutable,
        name,
        ty,
        init,
    }
}

fn parse_const(
    cur: &mut Cursor<'_>,
    attrs: Vec<Attribute>,
    anchor: Span,
    public: bool,
) -> ItemConst {
    cur.bump(); // `const`
    let (name, ty, init) = parse_typed_value(cur);
    ItemConst {
        attrs,
        span: anchor,
        end_byte: cur.last_end(),
        public,
        name,
        ty,
        init,
    }
}

fn parse_macro_rules(cur: &mut Cursor<'_>, attrs: Vec<Attribute>, anchor: Span) -> ItemMacroRules {
    cur.bump(); // `macro_rules`
    cur.bump(); // `!`
    let (name, _) = cur.take_name();
    let mut tokens = Vec::new();
    let mut needs_semi = false;
    if let Some(g) = cur.peek().and_then(TokenTree::as_group) {
        tokens = g.stream().tokens().to_vec();
        needs_semi = g.delimiter() != Delimiter::Brace;
        cur.bump();
    }
    if needs_semi && cur.at_punct(';') {
        cur.bump();
    }
    ItemMacroRules {
        attrs,
        span: anchor,
        end_byte: cur.last_end(),
        name,
        tokens,
    }
}

/// Whether the cursor sits on `path::segments! ( … )`.
fn macro_invocation_ahead(cur: &Cursor<'_>) -> bool {
    let mut j = 0;
    loop {
        if cur.peek_at(j).and_then(TokenTree::as_ident).is_none() {
            return false;
        }
        if cur.peek_at(j + 1).is_some_and(|t| joint_punct(t, ':'))
            && cur.peek_at(j + 2).and_then(TokenTree::as_punct) == Some(':')
        {
            j += 3;
            continue;
        }
        return cur.peek_at(j + 1).and_then(TokenTree::as_punct) == Some('!')
            && cur.peek_at(j + 2).and_then(TokenTree::as_group).is_some();
    }
}

/// Consumes `path::name ! ( … )`, returning the last path segment, its
/// span and the invocation group.
fn consume_macro_path(cur: &mut Cursor<'_>) -> (String, Span, Option<Group>) {
    let (mut name, mut name_span) = cur.take_name();
    while cur.peek().is_some_and(|t| joint_punct(t, ':'))
        && cur.peek_at(1).and_then(TokenTree::as_punct) == Some(':')
    {
        cur.bump();
        cur.bump();
        let (n, s) = cur.take_name();
        name = n;
        name_span = s;
    }
    cur.bump(); // `!`
    let group = cur.peek().and_then(TokenTree::as_group).cloned();
    if group.is_some() {
        cur.bump();
    }
    (name, name_span, group)
}

fn parse_item_macro(cur: &mut Cursor<'_>, attrs: Vec<Attribute>, anchor: Span) -> ItemMacro {
    let (name, name_span, group) = consume_macro_path(cur);
    let (delimiter, tokens) = group.map_or((Delimiter::None, Vec::new()), |g| {
        (g.delimiter(), g.stream().tokens().to_vec())
    });
    if delimiter != Delimiter::Brace && cur.at_punct(';') {
        cur.bump();
    }
    let body = parse_exprs(&tokens);
    ItemMacro {
        attrs,
        span: anchor,
        end_byte: cur.last_end(),
        name,
        name_span,
        delimiter,
        tokens,
        body,
    }
}

/// Whether the tokens at the cursor (past any outer attributes) start a
/// nested item rather than expression content. `unsafe` only counts
/// when introducing an item (`unsafe { … }` blocks are expressions),
/// and `const`/`static` only when shaped like `const NAME: …`.
fn starts_body_item(cur: &Cursor<'_>) -> bool {
    let mut j = 0;
    while cur.peek_at(j).and_then(TokenTree::as_punct) == Some('#')
        && cur
            .peek_at(j + 1)
            .and_then(TokenTree::as_group)
            .is_some_and(|g| g.delimiter() == Delimiter::Bracket)
    {
        j += 2;
    }
    let ident_at = |k: usize| cur.peek_at(k).and_then(TokenTree::as_ident);
    match ident_at(j) {
        Some("fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "type" | "pub") => true,
        Some("macro_rules") => cur.peek_at(j + 1).and_then(TokenTree::as_punct) == Some('!'),
        Some("unsafe") => matches!(ident_at(j + 1), Some("fn" | "impl" | "trait")),
        Some("static") => ident_at(j + 1).is_some(),
        Some("const") => {
            ident_at(j + 1).is_some()
                && (ident_at(j + 1) == Some("mut")
                    || cur.peek_at(j + 2).and_then(TokenTree::as_punct) == Some(':'))
        }
        _ => false,
    }
}

pub(crate) fn parse_exprs(tokens: &[TokenTree]) -> Vec<Expr> {
    let mut cur = Cursor::new(tokens);
    let mut out = Vec::new();
    let mut run: Vec<TokenTree> = Vec::new();
    fn flush(run: &mut Vec<TokenTree>, out: &mut Vec<Expr>) {
        if !run.is_empty() {
            out.push(Expr::Tokens(TokenRun {
                tokens: std::mem::take(run),
            }));
        }
    }
    while let Some(t) = cur.peek() {
        if starts_body_item(&cur) {
            flush(&mut run, &mut out);
            out.push(Expr::Item(Box::new(parse_item(&mut cur))));
            continue;
        }
        if t.as_ident() == Some("match") {
            flush(&mut run, &mut out);
            out.push(parse_match(&mut cur));
            continue;
        }
        if macro_invocation_ahead(&cur) {
            flush(&mut run, &mut out);
            let (name, span, group) = consume_macro_path(&mut cur);
            let (delimiter, toks) = group.map_or((Delimiter::None, Vec::new()), |g| {
                (g.delimiter(), g.stream().tokens().to_vec())
            });
            let body = parse_exprs(&toks);
            out.push(Expr::Macro(ExprMacro {
                name,
                span,
                delimiter,
                tokens: toks,
                body,
            }));
            continue;
        }
        if let Some(g) = t.as_group() {
            flush(&mut run, &mut out);
            out.push(Expr::Group(ExprGroup {
                delimiter: g.delimiter(),
                span: g.span(),
                exprs: parse_exprs(g.stream().tokens()),
            }));
            cur.bump();
            continue;
        }
        run.push(t.clone());
        cur.bump();
    }
    flush(&mut run, &mut out);
    out
}

fn parse_match(cur: &mut Cursor<'_>) -> Expr {
    let kw = cur.bump().cloned(); // `match`
    let match_span = kw.as_ref().map_or_else(Span::call_site, TokenTree::span);
    let mut scrut = Vec::new();
    while let Some(t) = cur.peek() {
        if let Some(g) = brace(t) {
            let arms = parse_arms(g.stream().tokens());
            cur.bump();
            return Expr::Match(ExprMatch {
                span: match_span,
                scrutinee: parse_exprs(&scrut),
                arms,
            });
        }
        scrut.push(t.clone());
        cur.bump();
    }
    // No body found (e.g. a macro fragment): degrade to a token run.
    let mut tokens: Vec<TokenTree> = kw.into_iter().collect();
    tokens.extend(scrut);
    Expr::Tokens(TokenRun { tokens })
}

fn parse_arms(tokens: &[TokenTree]) -> Vec<Arm> {
    let mut cur = Cursor::new(tokens);
    let mut arms = Vec::new();
    while !cur.at_end() {
        cur.parse_outer_attrs();
        let Some(first) = cur.peek() else { break };
        let arm_span = first.span();
        let mut pat = Vec::new();
        let mut found_arrow = false;
        while let Some(t) = cur.peek() {
            if joint_punct(t, '=') && cur.peek_at(1).and_then(TokenTree::as_punct) == Some('>') {
                cur.bump();
                cur.bump();
                found_arrow = true;
                break;
            }
            pat.push(t.clone());
            cur.bump();
        }
        if !found_arrow {
            break;
        }
        let guard = pat.iter().position(|t| t.as_ident() == Some("if"));
        let core = &pat[..guard.unwrap_or(pat.len())];
        let wild = core.len() == 1 && core[0].as_ident() == Some("_");
        let body = if let Some(g) = cur.peek().and_then(brace) {
            let b = parse_exprs(g.stream().tokens());
            cur.bump();
            if cur.at_punct(',') {
                cur.bump();
            }
            b
        } else {
            let mut body_toks = Vec::new();
            while let Some(t) = cur.peek() {
                if t.as_punct() == Some(',') {
                    cur.bump();
                    break;
                }
                body_toks.push(t.clone());
                cur.bump();
            }
            parse_exprs(&body_toks)
        };
        arms.push(Arm {
            span: arm_span,
            pat_tokens: pat,
            wild,
            body,
        });
    }
    arms
}
