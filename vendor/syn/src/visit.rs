//! Generic traversal over the reduced AST, mirroring real `syn`'s
//! `visit` module: override the `visit_*` hooks you care about and call
//! the matching `walk_*` function to keep descending.

use crate::{
    Arm, Attribute, Block, Expr, ExprGroup, ExprMacro, ExprMatch, Field, File, Item, ItemConst,
    ItemEnum, ItemFn, ItemImpl, ItemMacro, ItemMacroRules, ItemMod, ItemStatic, ItemStruct,
    ItemTrait, ItemVerbatim, TokenRun, Variant,
};

/// Read-only visitor over a parsed [`File`].
///
/// Every method defaults to walking into the node's children, so an
/// implementation only overrides the hooks it needs. An override that
/// still wants to descend calls the corresponding `walk_*` function.
pub trait Visit<'ast> {
    fn visit_file(&mut self, node: &'ast File) {
        walk_file(self, node);
    }
    fn visit_attribute(&mut self, node: &'ast Attribute) {
        let _ = node;
    }
    fn visit_item(&mut self, node: &'ast Item) {
        walk_item(self, node);
    }
    fn visit_item_fn(&mut self, node: &'ast ItemFn) {
        walk_item_fn(self, node);
    }
    fn visit_item_mod(&mut self, node: &'ast ItemMod) {
        walk_item_mod(self, node);
    }
    fn visit_item_struct(&mut self, node: &'ast ItemStruct) {
        walk_item_struct(self, node);
    }
    fn visit_item_enum(&mut self, node: &'ast ItemEnum) {
        walk_item_enum(self, node);
    }
    fn visit_item_impl(&mut self, node: &'ast ItemImpl) {
        walk_item_impl(self, node);
    }
    fn visit_item_trait(&mut self, node: &'ast ItemTrait) {
        walk_item_trait(self, node);
    }
    fn visit_item_static(&mut self, node: &'ast ItemStatic) {
        walk_item_static(self, node);
    }
    fn visit_item_const(&mut self, node: &'ast ItemConst) {
        walk_item_const(self, node);
    }
    fn visit_item_macro(&mut self, node: &'ast ItemMacro) {
        walk_item_macro(self, node);
    }
    fn visit_item_macro_rules(&mut self, node: &'ast ItemMacroRules) {
        let _ = node;
    }
    fn visit_item_verbatim(&mut self, node: &'ast ItemVerbatim) {
        let _ = node;
    }
    fn visit_field(&mut self, node: &'ast Field) {
        walk_field(self, node);
    }
    fn visit_variant(&mut self, node: &'ast Variant) {
        walk_variant(self, node);
    }
    fn visit_block(&mut self, node: &'ast Block) {
        walk_block(self, node);
    }
    fn visit_expr(&mut self, node: &'ast Expr) {
        walk_expr(self, node);
    }
    fn visit_expr_match(&mut self, node: &'ast ExprMatch) {
        walk_expr_match(self, node);
    }
    fn visit_arm(&mut self, node: &'ast Arm) {
        walk_arm(self, node);
    }
    fn visit_expr_macro(&mut self, node: &'ast ExprMacro) {
        walk_expr_macro(self, node);
    }
    fn visit_expr_group(&mut self, node: &'ast ExprGroup) {
        walk_expr_group(self, node);
    }
    fn visit_token_run(&mut self, node: &'ast TokenRun) {
        let _ = node;
    }
}

pub fn walk_file<'ast, V>(v: &mut V, node: &'ast File)
where
    V: Visit<'ast> + ?Sized,
{
    for attr in &node.attrs {
        v.visit_attribute(attr);
    }
    for item in &node.items {
        v.visit_item(item);
    }
}

pub fn walk_item<'ast, V>(v: &mut V, node: &'ast Item)
where
    V: Visit<'ast> + ?Sized,
{
    for attr in node.attrs() {
        v.visit_attribute(attr);
    }
    match node {
        Item::Fn(i) => v.visit_item_fn(i),
        Item::Mod(i) => v.visit_item_mod(i),
        Item::Struct(i) => v.visit_item_struct(i),
        Item::Enum(i) => v.visit_item_enum(i),
        Item::Impl(i) => v.visit_item_impl(i),
        Item::Trait(i) => v.visit_item_trait(i),
        Item::Static(i) => v.visit_item_static(i),
        Item::Const(i) => v.visit_item_const(i),
        Item::Macro(i) => v.visit_item_macro(i),
        Item::MacroRules(i) => v.visit_item_macro_rules(i),
        Item::Verbatim(i) => v.visit_item_verbatim(i),
    }
}

pub fn walk_item_fn<'ast, V>(v: &mut V, node: &'ast ItemFn)
where
    V: Visit<'ast> + ?Sized,
{
    if let Some(body) = &node.body {
        v.visit_block(body);
    }
}

pub fn walk_item_mod<'ast, V>(v: &mut V, node: &'ast ItemMod)
where
    V: Visit<'ast> + ?Sized,
{
    if let Some(items) = &node.content {
        for item in items {
            v.visit_item(item);
        }
    }
}

pub fn walk_item_struct<'ast, V>(v: &mut V, node: &'ast ItemStruct)
where
    V: Visit<'ast> + ?Sized,
{
    for field in &node.fields {
        v.visit_field(field);
    }
}

pub fn walk_item_enum<'ast, V>(v: &mut V, node: &'ast ItemEnum)
where
    V: Visit<'ast> + ?Sized,
{
    for variant in &node.variants {
        v.visit_variant(variant);
    }
}

pub fn walk_item_impl<'ast, V>(v: &mut V, node: &'ast ItemImpl)
where
    V: Visit<'ast> + ?Sized,
{
    for item in &node.items {
        v.visit_item(item);
    }
}

pub fn walk_item_trait<'ast, V>(v: &mut V, node: &'ast ItemTrait)
where
    V: Visit<'ast> + ?Sized,
{
    for item in &node.items {
        v.visit_item(item);
    }
}

pub fn walk_item_static<'ast, V>(v: &mut V, node: &'ast ItemStatic)
where
    V: Visit<'ast> + ?Sized,
{
    for expr in &node.init {
        v.visit_expr(expr);
    }
}

pub fn walk_item_const<'ast, V>(v: &mut V, node: &'ast ItemConst)
where
    V: Visit<'ast> + ?Sized,
{
    for expr in &node.init {
        v.visit_expr(expr);
    }
}

pub fn walk_item_macro<'ast, V>(v: &mut V, node: &'ast ItemMacro)
where
    V: Visit<'ast> + ?Sized,
{
    for expr in &node.body {
        v.visit_expr(expr);
    }
}

pub fn walk_field<'ast, V>(v: &mut V, node: &'ast Field)
where
    V: Visit<'ast> + ?Sized,
{
    for attr in &node.attrs {
        v.visit_attribute(attr);
    }
}

pub fn walk_variant<'ast, V>(v: &mut V, node: &'ast Variant)
where
    V: Visit<'ast> + ?Sized,
{
    for attr in &node.attrs {
        v.visit_attribute(attr);
    }
    for field in &node.fields {
        v.visit_field(field);
    }
}

pub fn walk_block<'ast, V>(v: &mut V, node: &'ast Block)
where
    V: Visit<'ast> + ?Sized,
{
    for expr in &node.exprs {
        v.visit_expr(expr);
    }
}

pub fn walk_expr<'ast, V>(v: &mut V, node: &'ast Expr)
where
    V: Visit<'ast> + ?Sized,
{
    match node {
        Expr::Match(m) => v.visit_expr_match(m),
        Expr::Macro(m) => v.visit_expr_macro(m),
        Expr::Item(i) => v.visit_item(i),
        Expr::Group(g) => v.visit_expr_group(g),
        Expr::Tokens(t) => v.visit_token_run(t),
    }
}

pub fn walk_expr_match<'ast, V>(v: &mut V, node: &'ast ExprMatch)
where
    V: Visit<'ast> + ?Sized,
{
    for expr in &node.scrutinee {
        v.visit_expr(expr);
    }
    for arm in &node.arms {
        v.visit_arm(arm);
    }
}

pub fn walk_arm<'ast, V>(v: &mut V, node: &'ast Arm)
where
    V: Visit<'ast> + ?Sized,
{
    for expr in &node.body {
        v.visit_expr(expr);
    }
}

pub fn walk_expr_macro<'ast, V>(v: &mut V, node: &'ast ExprMacro)
where
    V: Visit<'ast> + ?Sized,
{
    for expr in &node.body {
        v.visit_expr(expr);
    }
}

pub fn walk_expr_group<'ast, V>(v: &mut V, node: &'ast ExprGroup)
where
    V: Visit<'ast> + ?Sized,
{
    for expr in &node.exprs {
        v.visit_expr(expr);
    }
}
