//! Offline stand-in for the `syn` crate.
//!
//! Like every crate under `vendor/`, this implements exactly the API
//! surface the workspace uses: [`parse_file`] turns Rust source text into
//! a [`File`] of spanned items, and [`visit::Visit`] walks it. The AST is
//! deliberately *reduced* compared to real `syn`:
//!
//! * Items (`fn`, `struct`, `enum`, `impl`, `trait`, `mod`, `static`,
//!   `const`, macro invocations and `macro_rules!` definitions) are fully
//!   structured, with attributes, visibility, names, fields/variants and
//!   signature token runs.
//! * Function bodies are parsed into the constructs the lint engine
//!   reasons about structurally — `match` expressions (scrutinee, arms,
//!   wildcard detection), macro invocations, nested items and delimited
//!   groups — while everything else is preserved as ordered leaf-token
//!   runs. Nothing is dropped: every token of the source is reachable
//!   through the visitor, either as a structured node or as a raw token,
//!   which is what lets token-pattern lint rules stay exact.
//! * Types are token runs ([`TypeTokens`]) with helpers, not a `Type`
//!   tree.
//!
//! The parser is *total*: any token sequence produced by the lexer parses
//! into something (worst case an [`ItemVerbatim`]), so a novel syntactic
//! form can never abort a lint run. Comments and string contents never
//! appear as identifiers because the `proc-macro2` stand-in's lexer drops
//! them — the masking the old lexer-based lint engine did by hand.

pub use proc_macro2::{
    Delimiter, Group, Ident, LineColumn, Literal, Punct, Span, TokenStream, TokenTree,
};

mod parse;
pub mod visit;

use std::fmt;

/// A parse failure (in practice: a lexing failure; the item parser is
/// total).
#[derive(Debug, Clone)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 0-based column.
    pub column: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a whole source file.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let stream: TokenStream = src.parse().map_err(|e: proc_macro2::LexError| Error {
        message: e.message,
        line: e.line,
        column: e.column,
    })?;
    Ok(parse::parse_items_from_stream(stream))
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Inner attributes (`#![…]`) at the top of the file.
    pub attrs: Vec<Attribute>,
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// The full token stream the file parsed from.
    pub tokens: TokenStream,
}

/// An outer (`#[…]`) or inner (`#![…]`) attribute.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Whether this is an inner (`#![…]`) attribute.
    pub inner: bool,
    /// The attribute path (`cfg`, `derive`, `allow`, …).
    pub path: String,
    /// Tokens inside the attribute brackets after the path.
    pub tokens: Vec<TokenTree>,
    /// Span of the `#` token.
    pub span: Span,
}

impl Attribute {
    /// Whether this is exactly `#[cfg(test)]`.
    pub fn is_cfg_test(&self) -> bool {
        if self.path != "cfg" {
            return false;
        }
        let [TokenTree::Group(g)] = self.tokens.as_slice() else {
            return false;
        };
        g.delimiter() == Delimiter::Parenthesis
            && g.stream().len() == 1
            && g.stream().tokens()[0].as_ident() == Some("test")
    }

    /// Whether this is `#[test]`.
    pub fn is_test(&self) -> bool {
        self.path == "test" && self.tokens.is_empty()
    }
}

/// One item. Every variant carries its attributes, an anchor span (the
/// first token after the attributes — where a human would point at the
/// item) and the byte offset one past its last token.
#[derive(Debug, Clone)]
pub enum Item {
    /// A free or associated function.
    Fn(ItemFn),
    /// An inline or out-of-line module.
    Mod(ItemMod),
    /// A struct (named, tuple or unit).
    Struct(ItemStruct),
    /// An enum.
    Enum(ItemEnum),
    /// An `impl` block.
    Impl(ItemImpl),
    /// A trait definition.
    Trait(ItemTrait),
    /// A `static` item.
    Static(ItemStatic),
    /// A `const` item.
    Const(ItemConst),
    /// A macro invocation in item position (`thread_local! { … }`).
    Macro(ItemMacro),
    /// A `macro_rules!` definition.
    MacroRules(ItemMacroRules),
    /// Anything else (`use`, `type`, `extern crate`, …) kept as tokens.
    Verbatim(ItemVerbatim),
}

impl Item {
    /// The item's attributes.
    pub fn attrs(&self) -> &[Attribute] {
        match self {
            Item::Fn(i) => &i.attrs,
            Item::Mod(i) => &i.attrs,
            Item::Struct(i) => &i.attrs,
            Item::Enum(i) => &i.attrs,
            Item::Impl(i) => &i.attrs,
            Item::Trait(i) => &i.attrs,
            Item::Static(i) => &i.attrs,
            Item::Const(i) => &i.attrs,
            Item::Macro(i) => &i.attrs,
            Item::MacroRules(i) => &i.attrs,
            Item::Verbatim(i) => &i.attrs,
        }
    }

    /// The anchor span (first token after the attributes).
    pub fn span(&self) -> Span {
        match self {
            Item::Fn(i) => i.span,
            Item::Mod(i) => i.span,
            Item::Struct(i) => i.span,
            Item::Enum(i) => i.span,
            Item::Impl(i) => i.span,
            Item::Trait(i) => i.span,
            Item::Static(i) => i.span,
            Item::Const(i) => i.span,
            Item::Macro(i) => i.span,
            Item::MacroRules(i) => i.span,
            Item::Verbatim(i) => i.span,
        }
    }

    /// Byte offset one past the item's last token.
    pub fn end_byte(&self) -> usize {
        match self {
            Item::Fn(i) => i.end_byte,
            Item::Mod(i) => i.end_byte,
            Item::Struct(i) => i.end_byte,
            Item::Enum(i) => i.end_byte,
            Item::Impl(i) => i.end_byte,
            Item::Trait(i) => i.end_byte,
            Item::Static(i) => i.end_byte,
            Item::Const(i) => i.end_byte,
            Item::Macro(i) => i.end_byte,
            Item::MacroRules(i) => i.end_byte,
            Item::Verbatim(i) => i.end_byte,
        }
    }

    /// Whether any attribute is `#[cfg(test)]`.
    pub fn is_cfg_test(&self) -> bool {
        self.attrs().iter().any(Attribute::is_cfg_test)
    }
}

/// A run of type tokens (this stand-in does not build a `Type` tree).
#[derive(Debug, Clone, Default)]
pub struct TypeTokens {
    /// The tokens of the type, in order.
    pub tokens: Vec<TokenTree>,
}

impl TypeTokens {
    /// Span of the first token, if any.
    pub fn span(&self) -> Option<Span> {
        self.tokens.first().map(TokenTree::span)
    }

    /// Whether the type run is empty (no declared type).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Compact source-like rendering (`BTreeMap<u64, u64>`).
    pub fn render(&self) -> String {
        quote::render(&self.tokens)
    }

    /// Every identifier in the run, including inside nested groups,
    /// paired with its span.
    pub fn idents(&self) -> Vec<(String, Span)> {
        let mut out = Vec::new();
        fn walk(tokens: &[TokenTree], out: &mut Vec<(String, Span)>) {
            for t in tokens {
                match t {
                    TokenTree::Ident(i) => out.push((i.text().to_string(), i.span())),
                    TokenTree::Group(g) => walk(g.stream().tokens(), out),
                    _ => {}
                }
            }
        }
        walk(&self.tokens, &mut out);
        out
    }

    /// Whether `ident` occurs anywhere in the run.
    pub fn mentions(&self, ident: &str) -> bool {
        self.idents().iter().any(|(i, _)| i == ident)
    }
}

/// A function item (free or associated).
#[derive(Debug, Clone)]
pub struct ItemFn {
    /// Attributes.
    pub attrs: Vec<Attribute>,
    /// Anchor span (first token after attributes, e.g. `pub`).
    pub span: Span,
    /// Span of the `fn` keyword itself.
    pub fn_span: Span,
    /// One past the last token.
    pub end_byte: usize,
    /// Whether the item has a `pub` visibility.
    pub public: bool,
    /// The function name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Generic parameter tokens (between `<` and `>`), if any.
    pub generics: Vec<TokenTree>,
    /// Raw tokens inside the parameter parentheses.
    pub params: Vec<TokenTree>,
    /// The declared type of each non-`self` parameter.
    pub param_types: Vec<TypeTokens>,
    /// Return type tokens after `->` (empty when elided).
    pub ret: TypeTokens,
    /// Where-clause tokens, if any.
    pub where_clause: Vec<TokenTree>,
    /// The body, absent for declarations (`fn f();` in traits).
    pub body: Option<Block>,
}

/// A brace-delimited body, parsed into [`Expr`] nodes.
#[derive(Debug, Clone)]
pub struct Block {
    /// Span of the brace group.
    pub span: Span,
    /// The parsed contents.
    pub exprs: Vec<Expr>,
}

/// A module item.
#[derive(Debug, Clone)]
pub struct ItemMod {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    pub public: bool,
    /// Module name.
    pub name: String,
    /// Items for inline modules; `None` for `mod name;`.
    pub content: Option<Vec<Item>>,
}

/// A struct item.
#[derive(Debug, Clone)]
pub struct ItemStruct {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    pub public: bool,
    pub name: String,
    pub name_span: Span,
    /// Named or tuple fields (empty for unit structs).
    pub fields: Vec<Field>,
}

/// One struct, tuple or enum-variant field.
#[derive(Debug, Clone)]
pub struct Field {
    pub attrs: Vec<Attribute>,
    /// Span of the field name (or of the type for tuple fields).
    pub span: Span,
    pub public: bool,
    /// Field name; `None` for tuple fields.
    pub name: Option<String>,
    /// Declared type.
    pub ty: TypeTokens,
}

/// An enum item.
#[derive(Debug, Clone)]
pub struct ItemEnum {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    pub public: bool,
    pub name: String,
    pub name_span: Span,
    pub variants: Vec<Variant>,
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct Variant {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub name: String,
    /// Fields of struct or tuple variants.
    pub fields: Vec<Field>,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    /// Everything between `impl` and the body braces (generics, trait,
    /// self type, where clause) as raw tokens.
    pub header: Vec<TokenTree>,
    /// Associated items.
    pub items: Vec<Item>,
}

/// A trait definition.
#[derive(Debug, Clone)]
pub struct ItemTrait {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    pub public: bool,
    pub name: String,
    /// Header tokens after the name (supertraits, where clause).
    pub header: Vec<TokenTree>,
    /// Associated items.
    pub items: Vec<Item>,
}

/// A `static` item.
#[derive(Debug, Clone)]
pub struct ItemStatic {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    pub public: bool,
    /// Whether declared `static mut`.
    pub mutable: bool,
    pub name: String,
    pub ty: TypeTokens,
    /// The initializer, parsed like a body.
    pub init: Vec<Expr>,
}

/// A `const` item.
#[derive(Debug, Clone)]
pub struct ItemConst {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    pub public: bool,
    pub name: String,
    pub ty: TypeTokens,
    pub init: Vec<Expr>,
}

/// A macro invocation in item or statement position.
#[derive(Debug, Clone)]
pub struct ItemMacro {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    /// Last path segment (`thread_local` for `std::thread_local!`).
    pub name: String,
    /// Span of the macro name segment.
    pub name_span: Span,
    /// The delimiter of the invocation body.
    pub delimiter: Delimiter,
    /// Raw tokens of the invocation body.
    pub tokens: Vec<TokenTree>,
    /// The body parsed like an expression run (macro bodies are usually
    /// expression- or item-shaped; rules scan both views).
    pub body: Vec<Expr>,
}

/// A `macro_rules!` definition.
#[derive(Debug, Clone)]
pub struct ItemMacroRules {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    pub name: String,
    /// The raw rules tokens.
    pub tokens: Vec<TokenTree>,
}

/// An item kept as raw tokens (`use`, `type`, `extern crate`, or any
/// form the reduced parser does not model).
#[derive(Debug, Clone)]
pub struct ItemVerbatim {
    pub attrs: Vec<Attribute>,
    pub span: Span,
    pub end_byte: usize,
    /// The leading keyword (`use`, `type`, `extern`) or `"unknown"`.
    pub kind: &'static str,
    pub tokens: Vec<TokenTree>,
}

/// A node of a parsed body: the constructs the engine reasons about
/// structurally, with everything else preserved as token runs.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A `match` expression.
    Match(ExprMatch),
    /// A macro invocation.
    Macro(ExprMacro),
    /// An item nested inside a body (`fn`, `struct`, `use`, …).
    Item(Box<Item>),
    /// A delimited group, recursively parsed.
    Group(ExprGroup),
    /// A run of leaf tokens (no groups inside).
    Tokens(TokenRun),
}

/// A `match` expression.
#[derive(Debug, Clone)]
pub struct ExprMatch {
    /// Span of the `match` keyword.
    pub span: Span,
    /// The scrutinee, recursively parsed.
    pub scrutinee: Vec<Expr>,
    /// The arms in order.
    pub arms: Vec<Arm>,
}

/// One match arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Span of the first pattern token.
    pub span: Span,
    /// Pattern tokens, including any `if` guard.
    pub pat_tokens: Vec<TokenTree>,
    /// Whether the pattern is a bare `_` (possibly guarded).
    pub wild: bool,
    /// The arm body, recursively parsed.
    pub body: Vec<Expr>,
}

/// A macro invocation in expression position.
#[derive(Debug, Clone)]
pub struct ExprMacro {
    /// Last path segment of the macro name.
    pub name: String,
    /// Span of the name segment.
    pub span: Span,
    /// Delimiter of the invocation body.
    pub delimiter: Delimiter,
    /// Raw body tokens.
    pub tokens: Vec<TokenTree>,
    /// The body parsed like an expression run.
    pub body: Vec<Expr>,
}

/// A delimited group inside a body.
#[derive(Debug, Clone)]
pub struct ExprGroup {
    pub delimiter: Delimiter,
    pub span: Span,
    pub exprs: Vec<Expr>,
}

/// A run of leaf tokens.
#[derive(Debug, Clone)]
pub struct TokenRun {
    pub tokens: Vec<TokenTree>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> File {
        parse_file(src).expect("parses")
    }

    fn names(f: &File) -> Vec<String> {
        f.items
            .iter()
            .map(|i| match i {
                Item::Fn(x) => format!("fn {}", x.name),
                Item::Struct(x) => format!("struct {}", x.name),
                Item::Enum(x) => format!("enum {}", x.name),
                Item::Mod(x) => format!("mod {}", x.name),
                Item::Impl(_) => "impl".to_string(),
                Item::Trait(x) => format!("trait {}", x.name),
                Item::Static(x) => format!("static {}", x.name),
                Item::Const(x) => format!("const {}", x.name),
                Item::Macro(x) => format!("macro {}", x.name),
                Item::MacroRules(x) => format!("macro_rules {}", x.name),
                Item::Verbatim(x) => format!("verbatim {}", x.kind),
            })
            .collect()
    }

    #[test]
    fn items_of_each_kind_parse() {
        let f = file(
            "use std::fmt;\n\
             pub struct S<T: Clone> { pub a: u64, b: Vec<T> }\n\
             struct Tup(u64, bool);\n\
             pub enum E { A, B { x: u64 }, C(bool) }\n\
             impl<T> S<T> where T: Clone { pub fn get(&self) -> u64 { self.a } }\n\
             trait Tr { fn req(&self); }\n\
             mod inner { pub fn f() {} }\n\
             static N: u64 = 4;\n\
             pub const M: &str = \"x\";\n\
             macro_rules! mk { () => {} }\n\
             thread_local! { static T: u64 = 0; }\n\
             type Alias = u64;\n\
             pub fn free(a: u64, b: &mut [u8]) -> bool { a > b.len() as u64 }\n",
        );
        assert_eq!(
            names(&f),
            [
                "verbatim use",
                "struct S",
                "struct Tup",
                "enum E",
                "impl",
                "trait Tr",
                "mod inner",
                "static N",
                "const M",
                "macro_rules mk",
                "macro thread_local",
                "verbatim type",
                "fn free"
            ]
        );
    }

    #[test]
    fn struct_fields_and_enum_variants() {
        let f = file("pub struct C { pub a: u64, skew: f64 }\nenum K { X, Y(u8), Z { t: f32 } }");
        let Item::Struct(s) = &f.items[0] else {
            panic!()
        };
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name.as_deref(), Some("a"));
        assert!(s.fields[0].public);
        assert_eq!(s.fields[0].ty.render(), "u64");
        assert_eq!(s.fields[1].ty.render(), "f64");
        assert!(!s.fields[1].public);
        let Item::Enum(e) = &f.items[1] else { panic!() };
        let v: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(v, ["X", "Y", "Z"]);
        assert_eq!(e.variants[1].fields[0].ty.render(), "u8");
        assert_eq!(e.variants[2].fields[0].name.as_deref(), Some("t"));
    }

    #[test]
    fn generic_field_types_keep_commas() {
        let f = file("struct S { m: BTreeMap<u64, Vec<u8>>, n: u64 }");
        let Item::Struct(s) = &f.items[0] else {
            panic!()
        };
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].ty.render(), "BTreeMap<u64, Vec<u8>>");
    }

    #[test]
    fn fn_signature_is_structured() {
        let f = file("pub fn f<T: Into<u64>>(a: T, s: &str, p: f64) -> Result<u64, String> where T: Copy { todo!() }");
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        assert!(func.public);
        assert_eq!(func.name, "f");
        assert_eq!(func.param_types.len(), 3);
        assert_eq!(func.param_types[2].render(), "f64");
        assert_eq!(func.ret.render(), "Result<u64, String>");
        assert!(!func.where_clause.is_empty());
        assert!(func.body.is_some());
    }

    #[test]
    fn match_arms_and_wildcards() {
        let f =
            file("fn k(e: E) -> u64 { match e { E::A => 0, E::B { .. } if x > 1 => 1, _ => 2 } }");
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        let body = func.body.as_ref().unwrap();
        let m = body
            .exprs
            .iter()
            .find_map(|e| match e {
                Expr::Match(m) => Some(m),
                _ => None,
            })
            .expect("match found");
        assert_eq!(m.arms.len(), 3);
        assert!(!m.arms[0].wild);
        assert!(!m.arms[1].wild);
        assert!(m.arms[2].wild);
    }

    #[test]
    fn guarded_wildcard_is_wild() {
        let f = file("fn k(x: u64) -> u64 { match x { 0 => 0, _ if x > 3 => 1, _ => 2 } }");
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        let Expr::Match(m) = &func.body.as_ref().unwrap().exprs[0] else {
            panic!("{:?}", func.body);
        };
        assert!(m.arms[1].wild);
        assert!(m.arms[2].wild);
    }

    #[test]
    fn cfg_test_items_know_their_extent() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn x() { a.unwrap(); }\n}\nfn tail() {}\n";
        let f = file(src);
        assert!(!f.items[0].is_cfg_test());
        assert!(f.items[1].is_cfg_test());
        assert!(!f.items[2].is_cfg_test());
        let end = f.items[1].end_byte();
        assert!(src[..end].contains("unwrap"));
        assert!(!src[end..].contains("unwrap"));
    }

    #[test]
    fn nested_items_inside_bodies() {
        let f = file("fn outer() { fn inner() {} let x = 1; macro_rules! m { () => {} } m!(); }");
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        let body = func.body.as_ref().unwrap();
        let kinds: Vec<&str> = body
            .exprs
            .iter()
            .map(|e| match e {
                Expr::Item(i) => match **i {
                    Item::Fn(_) => "fn",
                    Item::MacroRules(_) => "macro_rules",
                    _ => "item",
                },
                Expr::Macro(_) => "macro",
                Expr::Tokens(_) => "tokens",
                Expr::Group(_) => "group",
                Expr::Match(_) => "match",
            })
            .collect();
        assert_eq!(kinds, ["fn", "tokens", "macro_rules", "macro", "tokens"]);
    }

    #[test]
    fn match_scrutinee_with_method_call() {
        let f = file("fn f() { match self.kind() { K::A => {} K::B => {} } }");
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        let Expr::Match(m) = &func.body.as_ref().unwrap().exprs[0] else {
            panic!()
        };
        assert_eq!(m.arms.len(), 2);
    }

    #[test]
    fn impl_items_are_parsed() {
        let f = file("impl Foo { const C: u64 = 1; pub fn m(&self) {} }");
        let Item::Impl(imp) = &f.items[0] else {
            panic!()
        };
        assert_eq!(imp.items.len(), 2);
        assert!(matches!(imp.items[0], Item::Const(_)));
        assert!(matches!(imp.items[1], Item::Fn(_)));
    }
}
