//! Smoke test: every Rust source file in the live workspace (crates and
//! vendored stand-ins alike) must lex and parse without error, and the
//! parse must account for every byte of the file — the lint engine's
//! guarantees are only as good as the parser's coverage.

use std::path::{Path, PathBuf};

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_source_file_parses() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    for top in ["crates", "vendor"] {
        collect_rs(&root.join(top), &mut files);
    }
    assert!(
        files.len() > 40,
        "expected to find the workspace sources, got {} files",
        files.len()
    );
    for path in files {
        let src = std::fs::read_to_string(&path).expect("readable source file");
        let file = syn::parse_file(&src)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        // Every item's extent must land inside the file, and items must
        // appear in source order.
        let mut prev_end = 0usize;
        for item in &file.items {
            let end = item.end_byte();
            assert!(
                end <= src.len(),
                "{}: item end out of range",
                path.display()
            );
            assert!(
                end >= prev_end,
                "{}: items out of order (end {end} after {prev_end})",
                path.display()
            );
            prev_end = end;
        }
    }
}
