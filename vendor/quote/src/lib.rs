//! Offline stand-in for the `quote` crate.
//!
//! Like the other stand-ins under `vendor/`, this implements only the
//! surface the workspace uses: the [`ToTokens`] trait plus
//! [`render`], which turns anything token-like back into compact source
//! text (the `syn` stand-in uses it to print type annotations inside
//! lint diagnostics). The `quote!` macro itself is not provided — the
//! lint engine only consumes token streams, it never constructs them.

use proc_macro2::{TokenStream, TokenTree};

/// Types that can append themselves to a [`TokenStream`].
pub trait ToTokens {
    /// Appends `self` to `tokens`.
    fn to_tokens(&self, tokens: &mut TokenStream);

    /// Collects `self` into a fresh stream.
    fn to_token_stream(&self) -> TokenStream {
        let mut out = TokenStream::new();
        self.to_tokens(&mut out);
        out
    }
}

impl ToTokens for TokenTree {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        tokens.push(self.clone());
    }
}

impl ToTokens for TokenStream {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        for t in self {
            tokens.push(t.clone());
        }
    }
}

impl<T: ToTokens> ToTokens for [T] {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        for t in self {
            t.to_tokens(tokens);
        }
    }
}

impl<T: ToTokens> ToTokens for Vec<T> {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        self.as_slice().to_tokens(tokens);
    }
}

impl<T: ToTokens + ?Sized> ToTokens for &T {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        (*self).to_tokens(tokens);
    }
}

/// Renders tokens as compact source-like text: single spaces between
/// tokens, except around path separators and inside generic brackets
/// where Rust convention omits them (`BTreeMap<u64, u64>` rather than
/// `BTreeMap < u64 , u64 >`).
pub fn render<T: ToTokens>(value: &T) -> String {
    fn walk(out: &mut String, tokens: &TokenStream) {
        let toks: Vec<&TokenTree> = tokens.into_iter().collect();
        for (i, t) in toks.iter().enumerate() {
            match t {
                TokenTree::Group(g) => {
                    let (open, close) = match g.delimiter() {
                        proc_macro2::Delimiter::Parenthesis => ('(', ')'),
                        proc_macro2::Delimiter::Brace => ('{', '}'),
                        proc_macro2::Delimiter::Bracket => ('[', ']'),
                        proc_macro2::Delimiter::None => (' ', ' '),
                    };
                    out.push(open);
                    walk(out, g.stream());
                    out.push(close);
                }
                TokenTree::Ident(id) => {
                    if needs_space(out) {
                        out.push(' ');
                    }
                    out.push_str(id.text());
                }
                TokenTree::Literal(l) => {
                    if needs_space(out) {
                        out.push(' ');
                    }
                    out.push_str(l.text());
                }
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' {
                        out.push(c);
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                    let _ = i;
                }
            }
        }
    }

    fn needs_space(out: &str) -> bool {
        out.chars()
            .last()
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
    }

    let mut out = String::new();
    walk(&mut out, &value.to_token_stream());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_compacts_paths_and_generics() {
        let ts: TokenStream = "BTreeMap < u64 , Vec < u8 > >".parse().unwrap();
        assert_eq!(render(&ts), "BTreeMap<u64, Vec<u8>>");
        let ts: TokenStream = "std :: rc :: Rc < T >".parse().unwrap();
        assert_eq!(render(&ts), "std::rc::Rc<T>");
    }

    #[test]
    fn render_keeps_references_tight() {
        let ts: TokenStream = "& 'a mut f64".parse().unwrap();
        assert_eq!(render(&ts), "&'a mut f64");
    }
}
