//! Offline placeholder for `rand`.
//!
//! The workspace declares rand as a dev-dependency but all randomness in
//! the simulator flows through the deterministic `conzone_sim::SimRng`;
//! nothing imports this crate. The placeholder exists only so dependency
//! resolution succeeds without a crates.io mirror.

#![forbid(unsafe_code)]
