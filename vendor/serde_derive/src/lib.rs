//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The real derives generate data-model plumbing; since the workspace's
//! serde traits are empty markers that nothing ever bounds on, emitting no
//! code at all is a valid implementation of the derive contract here.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and any `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and any `#[serde(...)]` attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
